// Named benchmark suite: one synthetic stand-in per graph *family* of
// the paper's Table 1 (44 Florida + 6 SNAP + 5 Koblenz graphs). Each
// entry names the paper row it substitutes for, the generator family,
// and a builder parameterized by a size multiplier so the same suite
// scales from unit-test size to the benchmark defaults.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace glouvain::gen {

struct SuiteEntry {
  std::string name;        ///< short id used on the command line
  std::string paper_graph; ///< the Table-1 row(s) this stands in for
  std::string family;      ///< generator family
  /// scale multiplies the default vertex budget (1.0 = bench default,
  /// which is sized for a 2-core container; the paper's originals are
  /// 10-100x larger).
  std::function<graph::Csr(double scale, std::uint64_t seed)> build;
};

/// The full Table-1 stand-in suite, in the paper's order (decreasing
/// average degree).
const std::vector<SuiteEntry>& table1_suite();

/// Find an entry by name; throws std::invalid_argument if unknown.
const SuiteEntry& suite_entry(const std::string& name);

/// All suite names, for --graph=all expansion and usage text.
std::vector<std::string> suite_names();

}  // namespace glouvain::gen
