// Random geometric graph in the unit square: n points, edges between
// pairs closer than radius r. Matches the paper's rgg_n_2_{22,23,24}_s0
// family (moderate uniform degrees, strong spatial community structure).
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace glouvain::gen {

/// radius <= 0 selects the connectivity-threshold radius
/// sqrt(ln(n) / (pi * n)) * 1.2, giving mean degree ~= 1.44 * ln n —
/// close to the rgg_n_2_* average degrees in Table 1.
graph::Csr random_geometric(graph::VertexId n, double radius, std::uint64_t seed);

}  // namespace glouvain::gen
