// Road/OSM-like networks (road_usa, europe_osm, …): planar, almost all
// vertices of degree 2–4, huge diameter, strong geographic community
// structure. Built as a sparse 2-D lattice with random edge
// subdivision — subdividing an edge k times inserts a chain of
// degree-2 vertices, exactly the signature of OSM road polylines.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace glouvain::gen {

struct RoadParams {
  graph::VertexId grid_nx = 256;
  graph::VertexId grid_ny = 256;
  double keep_fraction = 0.85;   ///< fraction of lattice edges kept (potholes)
  double subdivide_mean = 2.0;   ///< mean extra degree-2 vertices per edge
  std::uint64_t seed = 1;
};

graph::Csr road_network(const RoadParams& params);

}  // namespace glouvain::gen
