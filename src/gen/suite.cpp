#include "gen/suite.hpp"

#include <cmath>
#include <stdexcept>

#include "gen/ba.hpp"
#include "gen/cliques.hpp"
#include "gen/er.hpp"
#include "gen/lfr.hpp"
#include "gen/mesh.hpp"
#include "gen/rgg.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/sbm.hpp"
#include "gen/ws.hpp"

namespace glouvain::gen {

namespace {

graph::VertexId scaled(double base, double scale) {
  return static_cast<graph::VertexId>(std::max(64.0, base * scale));
}

/// R-MAT scale (log2 n) for a scaled vertex budget.
unsigned rmat_scale(double base_log2, double scale) {
  const double extra = std::log2(std::max(scale, 1.0 / 1024.0));
  const double s = base_log2 + extra;
  return static_cast<unsigned>(std::max(8.0, std::round(s)));
}

std::vector<SuiteEntry> make_suite() {
  std::vector<SuiteEntry> s;

  // --- Heavy-tailed social/collaboration graphs (top of Table 1) ---
  s.push_back({"actor", "out.actor-collaboration / hollywood-2009", "barabasi-albert",
               [](double sc, std::uint64_t seed) {
                 return barabasi_albert(scaled(60e3, sc), 40, seed);
               }});
  s.push_back({"orkut", "com-orkut / soc-LiveJournal1", "rmat",
               [](double sc, std::uint64_t seed) {
                 RmatParams p;
                 p.scale = rmat_scale(16, sc);
                 p.edge_factor = 32;
                 return rmat(p, seed);
               }});
  s.push_back({"pokec", "soc-pokec-relationships / com-lj", "rmat",
               [](double sc, std::uint64_t seed) {
                 RmatParams p;
                 p.scale = rmat_scale(16, sc);
                 p.edge_factor = 18;
                 return rmat(p, seed);
               }});
  s.push_back({"web", "uk-2002 / cnr-2000", "rmat (web-skewed)",
               [](double sc, std::uint64_t seed) {
                 RmatParams p;
                 p.scale = rmat_scale(16, sc);
                 p.edge_factor = 16;
                 p.a = 0.65;
                 p.b = 0.15;
                 p.c = 0.15;
                 return rmat(p, seed);
               }});
  s.push_back({"copapers", "coPapersDBLP", "barabasi-albert",
               [](double sc, std::uint64_t seed) {
                 return barabasi_albert(scaled(60e3, sc), 28, seed);
               }});

  // --- FEM / optimization meshes (middle of Table 1) ---
  s.push_back({"fem3d", "audikw_1 / bone010 / Flan_1565 / Geo_1438", "3d 26-pt mesh",
               [](double sc, std::uint64_t seed) {
                 (void)seed;
                 const auto side = static_cast<graph::VertexId>(
                     std::cbrt(200e3 * sc));
                 return grid3d(std::max<graph::VertexId>(side, 8),
                               std::max<graph::VertexId>(side, 8),
                               std::max<graph::VertexId>(side, 8), true);
               }});
  s.push_back({"nlpkkt", "nlpkkt120/160/200", "3d mesh + KKT coupling",
               [](double sc, std::uint64_t seed) {
                 const auto side = static_cast<graph::VertexId>(
                     std::cbrt(200e3 * sc));
                 const graph::VertexId sd = std::max<graph::VertexId>(side, 8);
                 return kkt_mesh(sd, sd, sd, sd * sd / 2 + 1, seed);
               }});
  s.push_back({"channel", "channel-500x100x100-b050 / packing-500x", "3d 6-pt duct mesh",
               [](double sc, std::uint64_t seed) {
                 (void)seed;
                 const auto base = static_cast<graph::VertexId>(
                     std::max(8.0, 30 * std::cbrt(sc)));
                 return grid3d(5 * base, base, base, false);
               }});

  // --- Spatial graphs ---
  s.push_back({"rgg", "rgg_n_2_22..24_s0", "random geometric",
               [](double sc, std::uint64_t seed) {
                 return random_geometric(scaled(260e3, sc), 0, seed);
               }});
  s.push_back({"smallworld", "delaunay_n24 (proximity family)", "watts-strogatz",
               [](double sc, std::uint64_t seed) {
                 return watts_strogatz(scaled(260e3, sc), 3, 0.05, seed);
               }});

  // --- Community-labelled web/social (SNAP com-* family) ---
  s.push_back({"community", "com-youtube / com-dblp / com-amazon", "lfr",
               [](double sc, std::uint64_t seed) {
                 LfrParams p;
                 p.num_vertices = scaled(130e3, sc);
                 p.mu = 0.25;
                 p.seed = seed;
                 return lfr(p).graph;
               }});
  s.push_back({"flickr", "out.flickr-links / out.flixster", "barabasi-albert (sparse)",
               [](double sc, std::uint64_t seed) {
                 return barabasi_albert(scaled(260e3, sc), 5, seed);
               }});

  // --- Road / OSM family (bottom of Table 1: low degree, huge diameter) ---
  s.push_back({"road", "road_usa / germany_osm / europe_osm", "road lattice",
               [](double sc, std::uint64_t seed) {
                 RoadParams p;
                 const auto side = static_cast<graph::VertexId>(
                     std::max(32.0, 300.0 * std::sqrt(sc)));
                 p.grid_nx = side;
                 p.grid_ny = side;
                 p.seed = seed;
                 return road_network(p);
               }});
  s.push_back({"trace", "hugetrace-00020 / hugebubbles-000*", "road lattice (dense)",
               [](double sc, std::uint64_t seed) {
                 RoadParams p;
                 const auto side = static_cast<graph::VertexId>(
                     std::max(32.0, 360.0 * std::sqrt(sc)));
                 p.grid_nx = side;
                 p.grid_ny = side;
                 p.keep_fraction = 0.95;
                 p.subdivide_mean = 0.5;
                 p.seed = seed;
                 return road_network(p);
               }});
  return s;
}

}  // namespace

const std::vector<SuiteEntry>& table1_suite() {
  static const std::vector<SuiteEntry> suite = make_suite();
  return suite;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const auto& e : table1_suite()) {
    if (e.name == name) return e;
  }
  throw std::invalid_argument("unknown suite graph: " + name);
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  for (const auto& e : table1_suite()) names.push_back(e.name);
  return names;
}

}  // namespace glouvain::gen
