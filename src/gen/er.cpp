#include "gen/er.hpp"

#include "graph/builder.hpp"
#include "util/prng.hpp"

namespace glouvain::gen {

graph::Csr erdos_renyi(graph::VertexId n, std::uint64_t m, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<graph::Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    auto u = static_cast<graph::VertexId>(rng.next_below(n));
    auto v = static_cast<graph::VertexId>(rng.next_below(n));
    if (u == v) v = static_cast<graph::VertexId>((v + 1) % n);
    edges.push_back({u, v, 1.0});
  }
  return graph::build_csr(n, std::move(edges));
}

}  // namespace glouvain::gen
