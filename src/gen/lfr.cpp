#include "gen/lfr.hpp"

#include <algorithm>
#include <cmath>

#include "graph/builder.hpp"
#include "util/prng.hpp"

namespace glouvain::gen {

namespace {

/// Inverse-transform sample from a truncated power law with density
/// proportional to x^-gamma on [lo, hi].
double power_law(util::Xoshiro256& rng, double gamma, double lo, double hi) {
  const double a = 1.0 - gamma;
  const double lo_a = std::pow(lo, a);
  const double hi_a = std::pow(hi, a);
  return std::pow(lo_a + rng.next_double() * (hi_a - lo_a), 1.0 / a);
}

/// Configuration-model pairing: shuffle stubs and pair consecutively,
/// dropping pairs the predicate rejects (loops, same-community, …).
template <typename Accept>
void pair_stubs(std::vector<graph::VertexId>& stubs, util::Xoshiro256& rng,
                std::vector<graph::Edge>& edges, Accept&& accept) {
  // Fisher–Yates shuffle.
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
  }
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (accept(stubs[i], stubs[i + 1])) {
      edges.push_back({stubs[i], stubs[i + 1], 1.0});
    }
  }
}

}  // namespace

LfrResult lfr(const LfrParams& params) {
  util::Xoshiro256 rng(params.seed);
  const graph::VertexId n = params.num_vertices;

  // Degree sequence.
  std::vector<unsigned> degree(n);
  for (auto& d : degree) {
    d = static_cast<unsigned>(power_law(rng, params.degree_exponent,
                                        params.min_degree, params.max_degree));
  }

  // Community sizes until they cover n, then truncate the last.
  std::vector<graph::VertexId> comm_size;
  graph::VertexId covered = 0;
  while (covered < n) {
    auto s = static_cast<graph::VertexId>(power_law(
        rng, params.community_exponent, params.min_community, params.max_community));
    s = std::min<graph::VertexId>(s, n - covered);
    comm_size.push_back(s);
    covered += s;
  }

  std::vector<graph::Community> truth(n);
  std::vector<graph::VertexId> comm_start(comm_size.size());
  {
    graph::VertexId at = 0;
    for (std::size_t c = 0; c < comm_size.size(); ++c) {
      comm_start[c] = at;
      for (graph::VertexId i = 0; i < comm_size[c]; ++i) {
        truth[at + i] = static_cast<graph::Community>(c);
      }
      at += comm_size[c];
    }
  }

  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * params.min_degree);

  // Intra-community stubs, one configuration pairing per community.
  std::vector<graph::VertexId> stubs;
  for (std::size_t c = 0; c < comm_size.size(); ++c) {
    stubs.clear();
    for (graph::VertexId i = 0; i < comm_size[c]; ++i) {
      const graph::VertexId v = comm_start[c] + i;
      auto intra = static_cast<unsigned>(
          std::lround((1.0 - params.mu) * static_cast<double>(degree[v])));
      // A vertex cannot have more intra-neighbours than the community offers.
      intra = std::min<unsigned>(intra, comm_size[c] > 0 ? comm_size[c] - 1 : 0);
      for (unsigned s = 0; s < intra; ++s) stubs.push_back(v);
    }
    pair_stubs(stubs, rng, edges,
               [](graph::VertexId a, graph::VertexId b) { return a != b; });
  }

  // Inter-community stubs, one global pairing.
  stubs.clear();
  for (graph::VertexId v = 0; v < n; ++v) {
    const auto inter = static_cast<unsigned>(
        std::lround(params.mu * static_cast<double>(degree[v])));
    for (unsigned s = 0; s < inter; ++s) stubs.push_back(v);
  }
  pair_stubs(stubs, rng, edges, [&truth](graph::VertexId a, graph::VertexId b) {
    return truth[a] != truth[b];
  });

  LfrResult result{graph::build_csr(n, std::move(edges)), std::move(truth)};
  return result;
}

}  // namespace glouvain::gen
