#include "gen/sbm.hpp"

#include "graph/builder.hpp"
#include "util/prng.hpp"

namespace glouvain::gen {

SbmResult planted_partition(const SbmParams& params) {
  const graph::VertexId n = params.num_vertices;
  const graph::VertexId k = std::max<graph::VertexId>(1, params.num_communities);
  const graph::VertexId block = (n + k - 1) / k;

  std::vector<graph::Community> truth(n);
  for (graph::VertexId v = 0; v < n; ++v) truth[v] = v / block;

  util::Xoshiro256 rng(params.seed);
  std::vector<graph::Edge> edges;

  // Expected-count sampling: draw m_in intra pairs per community and
  // m_out inter pairs globally; duplicates merge in the builder.
  const auto intra_per_comm = static_cast<std::uint64_t>(
      params.intra_degree * static_cast<double>(block) / 2.0);
  const auto inter_total = static_cast<std::uint64_t>(
      params.inter_degree * static_cast<double>(n) / 2.0);
  edges.reserve(static_cast<std::size_t>(intra_per_comm) * k + inter_total);

  for (graph::VertexId c = 0; c < k; ++c) {
    const graph::VertexId lo = c * block;
    const graph::VertexId hi = std::min<graph::VertexId>(n, lo + block);
    if (hi <= lo + 1) continue;
    const graph::VertexId size = hi - lo;
    for (std::uint64_t i = 0; i < intra_per_comm; ++i) {
      auto u = static_cast<graph::VertexId>(lo + rng.next_below(size));
      auto v = static_cast<graph::VertexId>(lo + rng.next_below(size));
      if (u == v) v = lo + (v - lo + 1) % size;
      edges.push_back({u, v, 1.0});
    }
  }
  for (std::uint64_t i = 0; i < inter_total; ++i) {
    auto u = static_cast<graph::VertexId>(rng.next_below(n));
    auto v = static_cast<graph::VertexId>(rng.next_below(n));
    if (truth[u] == truth[v]) continue;  // resample-by-skip keeps it simple
    edges.push_back({u, v, 1.0});
  }

  SbmResult result{graph::build_csr(n, std::move(edges)), std::move(truth)};
  return result;
}

}  // namespace glouvain::gen
