#include "gen/churn.hpp"

#include <algorithm>
#include <cstddef>
#include <unordered_set>
#include <utility>

#include "util/prng.hpp"

namespace glouvain::gen {

namespace {

using graph::Community;
using graph::VertexId;

std::uint64_t edge_key(VertexId u, VertexId v) noexcept {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// The evolving undirected edge set: a swap-erase vector for uniform
/// sampling plus a hash set for O(1) membership.
struct EdgeSet {
  std::vector<std::pair<VertexId, VertexId>> list;
  std::unordered_set<std::uint64_t> present;

  bool contains(VertexId u, VertexId v) const {
    return present.count(edge_key(u, v)) != 0;
  }

  void insert(VertexId u, VertexId v) {
    present.insert(edge_key(u, v));
    list.emplace_back(u, v);
  }

  /// Remove and return a uniformly random edge.
  std::pair<VertexId, VertexId> pop_random(util::Xoshiro256& rng) {
    const std::size_t i = rng.next_below(list.size());
    const auto edge = list[i];
    list[i] = list.back();
    list.pop_back();
    present.erase(edge_key(edge.first, edge.second));
    return edge;
  }
};

}  // namespace

std::vector<stream::Delta> churn(const graph::Csr& graph,
                                 std::span<const Community> community,
                                 const ChurnParams& params) {
  const VertexId n = graph.num_vertices();
  util::Xoshiro256 rng(params.seed);

  EdgeSet edges;
  edges.list.reserve(graph.num_arcs() / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : graph.neighbors(u)) {
      if (u <= v) edges.insert(u, v);  // each undirected edge once
    }
  }

  // Members of every community, for intra-community endpoint sampling.
  Community num_comms = 0;
  for (VertexId v = 0; v < n && v < community.size(); ++v) {
    num_comms = std::max(num_comms, static_cast<Community>(community[v] + 1));
  }
  std::vector<std::vector<VertexId>> members(num_comms);
  for (VertexId v = 0; v < n && v < community.size(); ++v) {
    members[community[v]].push_back(v);
  }

  std::vector<stream::Delta> deltas;
  deltas.reserve(params.epochs);
  for (std::uint64_t epoch = 0; epoch < params.epochs; ++epoch) {
    stream::Delta delta;
    delta.stamp = epoch + 1;

    const std::size_t churn_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(params.churn_fraction *
                                    static_cast<double>(edges.list.size())));

    for (std::size_t i = 0; i < churn_count && !edges.list.empty(); ++i) {
      const auto [u, v] = edges.pop_random(rng);
      delta.deletions.push_back({u, v, 1.0});
    }

    // Merging epochs stitch one random community pair together.
    Community merge_a = 0;
    Community merge_b = 0;
    if (params.mode == ChurnMode::CommunityMerging && num_comms >= 2) {
      merge_a = static_cast<Community>(rng.next_below(num_comms));
      do {
        merge_b = static_cast<Community>(rng.next_below(num_comms));
      } while (merge_b == merge_a);
    }

    std::size_t inserted = 0;
    // Rejection sampling: duplicate or degenerate picks retry, with a
    // generous attempt bound so near-clique communities cannot spin.
    for (std::size_t attempt = 0;
         inserted < churn_count && attempt < churn_count * 64; ++attempt) {
      VertexId u = 0;
      VertexId v = 0;
      if (params.mode == ChurnMode::CommunityMerging && num_comms >= 2) {
        const auto& from = members[merge_a];
        const auto& to = members[merge_b];
        if (from.empty() || to.empty()) break;
        u = from[rng.next_below(from.size())];
        v = to[rng.next_below(to.size())];
      } else {
        if (num_comms == 0) break;  // no labels: nothing to preserve
        const auto& pool = members[rng.next_below(num_comms)];
        if (pool.size() < 2) continue;
        u = pool[rng.next_below(pool.size())];
        v = pool[rng.next_below(pool.size())];
      }
      if (u == v || edges.contains(u, v)) continue;
      edges.insert(u, v);
      delta.insertions.push_back({u, v, 1.0});
      ++inserted;
    }

    deltas.push_back(std::move(delta));
  }
  return deltas;
}

}  // namespace glouvain::gen
