#include "gen/rmat.hpp"

#include "graph/builder.hpp"
#include "simt/thread_pool.hpp"
#include "util/prng.hpp"

namespace glouvain::gen {

graph::Csr rmat(const RmatParams& params, std::uint64_t seed) {
  const graph::VertexId n = graph::VertexId{1} << params.scale;
  const auto m = static_cast<std::uint64_t>(params.edge_factor * static_cast<double>(n));

  std::vector<graph::Edge> edges(m);
  auto& pool = simt::ThreadPool::global();
  const std::size_t chunks = 8 * pool.size();
  const std::size_t chunk = (m + chunks - 1) / chunks;

  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    util::Xoshiro256 rng(seed ^ util::hash64(c + 1));
    const std::uint64_t b = c * chunk;
    const std::uint64_t e = std::min<std::uint64_t>(b + chunk, m);
    for (std::uint64_t i = b; i < e; ++i) {
      std::uint64_t u = 0, v = 0;
      for (unsigned bit = 0; bit < params.scale; ++bit) {
        const double r = rng.next_double();
        // Quadrant choice with slight per-level noise, as in Graph500,
        // to avoid exactly self-similar artifacts.
        double a = params.a, bq = params.b, cq = params.c;
        if (r < a) {
          // top-left: no bits set
        } else if (r < a + bq) {
          v |= std::uint64_t{1} << bit;
        } else if (r < a + bq + cq) {
          u |= std::uint64_t{1} << bit;
        } else {
          u |= std::uint64_t{1} << bit;
          v |= std::uint64_t{1} << bit;
        }
      }
      if (params.scramble_ids) {
        u = util::hash64(u + seed) & (n - 1);
        v = util::hash64(v + seed) & (n - 1);
      }
      if (u == v) v = (v + 1) & (n - 1);
      edges[i] = {static_cast<graph::VertexId>(u), static_cast<graph::VertexId>(v), 1.0};
    }
  });
  return graph::build_csr(n, std::move(edges));
}

}  // namespace glouvain::gen
