// Ring of cliques: k cliques of size s, consecutive cliques joined by
// one bridge edge. The textbook graph with unambiguous communities —
// used to unit-test that every Louvain variant recovers the cliques —
// and, scaled up, the classic resolution-limit example (Fortunato &
// Barthélemy 2007) referenced in the paper's conclusion.
#pragma once

#include "graph/csr.hpp"

namespace glouvain::gen {

graph::Csr ring_of_cliques(graph::VertexId num_cliques, graph::VertexId clique_size);

}  // namespace glouvain::gen
