#include "gen/road.hpp"

#include "graph/builder.hpp"
#include "util/prng.hpp"

namespace glouvain::gen {

graph::Csr road_network(const RoadParams& params) {
  util::Xoshiro256 rng(params.seed);
  const graph::VertexId nx = params.grid_nx, ny = params.grid_ny;
  auto id = [nx](graph::VertexId x, graph::VertexId y) { return y * nx + x; };

  struct Raw {
    graph::VertexId u, v;
  };
  std::vector<Raw> lattice;
  lattice.reserve(2 * static_cast<std::size_t>(nx) * ny);
  for (graph::VertexId y = 0; y < ny; ++y) {
    for (graph::VertexId x = 0; x < nx; ++x) {
      if (x + 1 < nx && rng.next_bool(params.keep_fraction)) {
        lattice.push_back({id(x, y), id(x + 1, y)});
      }
      if (y + 1 < ny && rng.next_bool(params.keep_fraction)) {
        lattice.push_back({id(x, y), id(x, y + 1)});
      }
    }
  }

  // Subdivide: geometric(1/(1+mean)) extra vertices per edge.
  const double p_more = params.subdivide_mean / (1.0 + params.subdivide_mean);
  graph::VertexId next_vertex = nx * ny;
  std::vector<graph::Edge> edges;
  edges.reserve(lattice.size() * 3);
  for (const Raw& r : lattice) {
    graph::VertexId prev = r.u;
    while (rng.next_bool(p_more)) {
      const graph::VertexId mid = next_vertex++;
      edges.push_back({prev, mid, 1.0});
      prev = mid;
    }
    edges.push_back({prev, r.v, 1.0});
  }
  return graph::build_csr(next_vertex, std::move(edges));
}

}  // namespace glouvain::gen
