#include "gen/ba.hpp"

#include "graph/builder.hpp"
#include "util/prng.hpp"

namespace glouvain::gen {

graph::Csr barabasi_albert(graph::VertexId n, unsigned attach, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * attach);

  // `targets` holds one entry per edge endpoint: sampling uniformly
  // from it IS degree-proportional sampling (the standard trick).
  std::vector<graph::VertexId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n) * attach);

  const graph::VertexId start = std::max<graph::VertexId>(attach, 2);
  // Seed clique-ish core: a path over the first `start` vertices.
  for (graph::VertexId v = 1; v < start && v < n; ++v) {
    edges.push_back({v - 1, v, 1.0});
    endpoints.push_back(v - 1);
    endpoints.push_back(v);
  }

  for (graph::VertexId v = start; v < n; ++v) {
    for (unsigned k = 0; k < attach; ++k) {
      const auto pick = endpoints.empty()
                            ? static_cast<graph::VertexId>(rng.next_below(v))
                            : endpoints[rng.next_below(endpoints.size())];
      const graph::VertexId target = (pick == v) ? (v ? v - 1 : 0) : pick;
      edges.push_back({v, target, 1.0});
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return graph::build_csr(n, std::move(edges));
}

}  // namespace glouvain::gen
