// R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos 2004).
//
// With the Graph500 parameters (a=0.57, b=c=0.19, d=0.05) this yields
// the heavy-tailed degree distributions of the paper's social-network
// inputs (com-orkut, soc-LiveJournal1, hollywood-2009, uk-2002…) —
// exactly the skew the degree-bucketed kernel exists to load-balance.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace glouvain::gen {

struct RmatParams {
  unsigned scale = 16;          ///< n = 2^scale vertices
  double edge_factor = 16.0;    ///< m = edge_factor * n undirected edges
  double a = 0.57, b = 0.19, c = 0.19;  ///< quadrant probabilities (d = 1-a-b-c)
  bool scramble_ids = true;     ///< hash vertex ids to break locality
};

graph::Csr rmat(const RmatParams& params, std::uint64_t seed);

}  // namespace glouvain::gen
