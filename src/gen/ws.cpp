#include "gen/ws.hpp"

#include "graph/builder.hpp"
#include "util/prng.hpp"

namespace glouvain::gen {

graph::Csr watts_strogatz(graph::VertexId n, unsigned k, double beta,
                          std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * k);
  for (graph::VertexId v = 0; v < n; ++v) {
    for (unsigned d = 1; d <= k; ++d) {
      graph::VertexId target = (v + d) % n;
      if (rng.next_bool(beta)) {
        target = static_cast<graph::VertexId>(rng.next_below(n));
        if (target == v) target = (v + 1) % n;
      }
      edges.push_back({v, target, 1.0});
    }
  }
  return graph::build_csr(n, std::move(edges));
}

}  // namespace glouvain::gen
