// Barabási–Albert preferential attachment: scale-free graphs with a
// hard power-law tail but (unlike R-MAT) guaranteed connectivity —
// models collaboration networks (coPapersDBLP, out.actor-collaboration).
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace glouvain::gen {

/// n vertices; each new vertex attaches `attach` edges to existing
/// vertices with probability proportional to current degree.
graph::Csr barabasi_albert(graph::VertexId n, unsigned attach, std::uint64_t seed);

}  // namespace glouvain::gen
