#include "gen/rgg.hpp"

#include <cmath>

#include "graph/builder.hpp"
#include "simt/thread_pool.hpp"
#include "util/prng.hpp"

namespace glouvain::gen {

graph::Csr random_geometric(graph::VertexId n, double radius, std::uint64_t seed) {
  if (radius <= 0) {
    radius = 1.2 * std::sqrt(std::log(static_cast<double>(n)) /
                             (3.14159265358979323846 * static_cast<double>(n)));
  }
  util::Xoshiro256 rng(seed);
  std::vector<double> x(n), y(n);
  for (graph::VertexId v = 0; v < n; ++v) {
    x[v] = rng.next_double();
    y[v] = rng.next_double();
  }

  // Uniform grid with cell size = radius: each point only compares
  // against its own and the 8 surrounding cells.
  const auto cells = static_cast<std::uint64_t>(std::max(1.0, std::floor(1.0 / radius)));
  const double cell_size = 1.0 / static_cast<double>(cells);
  std::vector<std::vector<graph::VertexId>> grid(cells * cells);
  auto cell_of = [&](double cx, double cy) {
    auto ix = std::min<std::uint64_t>(cells - 1, static_cast<std::uint64_t>(cx / cell_size));
    auto iy = std::min<std::uint64_t>(cells - 1, static_cast<std::uint64_t>(cy / cell_size));
    return iy * cells + ix;
  };
  for (graph::VertexId v = 0; v < n; ++v) grid[cell_of(x[v], y[v])].push_back(v);

  auto& pool = simt::ThreadPool::global();
  std::vector<std::vector<graph::Edge>> per_worker(pool.size());
  const double r2 = radius * radius;
  pool.parallel_for(n, [&](std::size_t vi, unsigned worker) {
    const auto v = static_cast<graph::VertexId>(vi);
    const auto ix = std::min<std::uint64_t>(cells - 1, static_cast<std::uint64_t>(x[v] / cell_size));
    const auto iy = std::min<std::uint64_t>(cells - 1, static_cast<std::uint64_t>(y[v] / cell_size));
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const std::int64_t cx = static_cast<std::int64_t>(ix) + dx;
        const std::int64_t cy = static_cast<std::int64_t>(iy) + dy;
        if (cx < 0 || cy < 0 || cx >= static_cast<std::int64_t>(cells) ||
            cy >= static_cast<std::int64_t>(cells)) {
          continue;
        }
        for (graph::VertexId u : grid[static_cast<std::size_t>(cy) * cells +
                                      static_cast<std::size_t>(cx)]) {
          if (u <= v) continue;  // each pair once
          const double ddx = x[u] - x[v], ddy = y[u] - y[v];
          if (ddx * ddx + ddy * ddy <= r2) {
            per_worker[worker].push_back({v, u, 1.0});
          }
        }
      }
    }
  });

  std::vector<graph::Edge> edges;
  std::size_t total = 0;
  for (const auto& w : per_worker) total += w.size();
  edges.reserve(total);
  for (auto& w : per_worker) {
    edges.insert(edges.end(), w.begin(), w.end());
  }
  return graph::build_csr(n, std::move(edges));
}

}  // namespace glouvain::gen
