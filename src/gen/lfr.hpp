// LFR-style benchmark (Lancichinetti, Fortunato, Radicchi 2008),
// simplified: power-law degree sequence, power-law community sizes,
// mixing parameter mu = fraction of each vertex's edges that leave its
// community. Unlike the SBM this combines *skewed degrees* with
// *planted communities* — the exact combination the paper's bucketed
// kernel targets — so it is the primary quality workload.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace glouvain::gen {

struct LfrParams {
  graph::VertexId num_vertices = 1 << 14;
  double degree_exponent = 2.5;     ///< power-law exponent of degrees
  unsigned min_degree = 4;
  unsigned max_degree = 128;
  double community_exponent = 1.5;  ///< power-law exponent of community sizes
  graph::VertexId min_community = 32;
  graph::VertexId max_community = 1024;
  double mu = 0.2;                  ///< mixing: fraction of inter-community edges
  std::uint64_t seed = 1;
};

struct LfrResult {
  graph::Csr graph;
  std::vector<graph::Community> ground_truth;
};

LfrResult lfr(const LfrParams& params);

}  // namespace glouvain::gen
