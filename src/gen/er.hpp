// Erdős–Rényi G(n, m): m uniformly random distinct endpoints pairs.
// The "no community structure" control for quality experiments.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace glouvain::gen {

/// n vertices, ~m undirected edges (duplicates merge, so the realized
/// count can be slightly lower). No self-loops.
graph::Csr erdos_renyi(graph::VertexId n, std::uint64_t m, std::uint64_t seed);

}  // namespace glouvain::gen
