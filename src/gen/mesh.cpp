#include "gen/mesh.hpp"

#include <cstdlib>

#include "graph/builder.hpp"
#include "util/prng.hpp"

namespace glouvain::gen {

graph::Csr grid2d(graph::VertexId nx, graph::VertexId ny, bool moore) {
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(nx) * ny * (moore ? 4 : 2));
  auto id = [nx](graph::VertexId x, graph::VertexId y) { return y * nx + x; };
  for (graph::VertexId y = 0; y < ny; ++y) {
    for (graph::VertexId x = 0; x < nx; ++x) {
      const graph::VertexId v = id(x, y);
      if (x + 1 < nx) edges.push_back({v, id(x + 1, y), 1.0});
      if (y + 1 < ny) edges.push_back({v, id(x, y + 1), 1.0});
      if (moore) {
        if (x + 1 < nx && y + 1 < ny) edges.push_back({v, id(x + 1, y + 1), 1.0});
        if (x > 0 && y + 1 < ny) edges.push_back({v, id(x - 1, y + 1), 1.0});
      }
    }
  }
  return graph::build_csr(nx * ny, std::move(edges));
}

graph::Csr grid3d(graph::VertexId nx, graph::VertexId ny, graph::VertexId nz,
                  bool moore) {
  std::vector<graph::Edge> edges;
  auto id = [nx, ny](graph::VertexId x, graph::VertexId y, graph::VertexId z) {
    return (z * ny + y) * nx + x;
  };
  for (graph::VertexId z = 0; z < nz; ++z) {
    for (graph::VertexId y = 0; y < ny; ++y) {
      for (graph::VertexId x = 0; x < nx; ++x) {
        const graph::VertexId v = id(x, y, z);
        // Each undirected edge once: enumerate the 13 (Moore) or 3
        // (von Neumann) "forward" offsets.
        for (int dz = 0; dz <= 1; ++dz) {
          for (int dy = (dz ? -1 : 0); dy <= 1; ++dy) {
            for (int dx = ((dz || dy) ? -1 : 1); dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              if (!moore && (std::abs(dx) + std::abs(dy) + std::abs(dz)) != 1) continue;
              const std::int64_t X = static_cast<std::int64_t>(x) + dx;
              const std::int64_t Y = static_cast<std::int64_t>(y) + dy;
              const std::int64_t Z = static_cast<std::int64_t>(z) + dz;
              if (X < 0 || Y < 0 || Z < 0 || X >= nx || Y >= ny || Z >= nz) continue;
              edges.push_back({v, id(static_cast<graph::VertexId>(X),
                                     static_cast<graph::VertexId>(Y),
                                     static_cast<graph::VertexId>(Z)),
                               1.0});
            }
          }
        }
      }
    }
  }
  return graph::build_csr(nx * ny * nz, std::move(edges));
}

graph::Csr kkt_mesh(graph::VertexId nx, graph::VertexId ny, graph::VertexId nz,
                    graph::VertexId coupling_stride, std::uint64_t seed) {
  graph::Csr base = grid3d(nx, ny, nz, /*moore=*/true);
  const graph::VertexId n = base.num_vertices();
  util::Xoshiro256 rng(seed);
  std::vector<graph::Edge> edges;
  edges.reserve(base.num_edges() + n);
  for (graph::VertexId u = 0; u < n; ++u) {
    auto nbrs = base.neighbors(u);
    auto ws = base.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= u) edges.push_back({u, nbrs[i], ws[i]});
    }
    // Long-range coupling edge with a little jitter so the pattern is
    // not perfectly banded.
    const auto jitter = static_cast<graph::VertexId>(rng.next_below(
        std::max<graph::VertexId>(1, coupling_stride / 8)));
    const graph::VertexId target = (u + coupling_stride + jitter) % n;
    if (target != u) edges.push_back({u, target, 1.0});
  }
  return graph::build_csr(n, std::move(edges));
}

}  // namespace glouvain::gen
