// Planted-partition stochastic block model: k equal communities,
// expected intra-degree d_in and inter-degree d_out per vertex. The
// ground-truth workload for quality tests (NMI/ARI against the planted
// labels) and for sweeping community strength d_in/d_out.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace glouvain::gen {

struct SbmParams {
  graph::VertexId num_vertices = 1 << 14;
  graph::VertexId num_communities = 64;
  double intra_degree = 12.0;  ///< expected within-community degree
  double inter_degree = 2.0;   ///< expected cross-community degree
  std::uint64_t seed = 1;
};

struct SbmResult {
  graph::Csr graph;
  std::vector<graph::Community> ground_truth;  ///< planted label per vertex
};

SbmResult planted_partition(const SbmParams& params);

}  // namespace glouvain::gen
