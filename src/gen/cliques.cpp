#include "gen/cliques.hpp"

#include "graph/builder.hpp"

namespace glouvain::gen {

graph::Csr ring_of_cliques(graph::VertexId num_cliques, graph::VertexId clique_size) {
  std::vector<graph::Edge> edges;
  const graph::VertexId n = num_cliques * clique_size;
  edges.reserve(static_cast<std::size_t>(num_cliques) * clique_size * clique_size / 2 +
                num_cliques);
  for (graph::VertexId c = 0; c < num_cliques; ++c) {
    const graph::VertexId base = c * clique_size;
    for (graph::VertexId i = 0; i < clique_size; ++i) {
      for (graph::VertexId j = i + 1; j < clique_size; ++j) {
        edges.push_back({base + i, base + j, 1.0});
      }
    }
    if (num_cliques > 1) {
      // Bridge from the last vertex of this clique to the first of the next.
      const graph::VertexId next_base = ((c + 1) % num_cliques) * clique_size;
      edges.push_back({base + clique_size - 1, next_base, 1.0});
    }
  }
  return graph::build_csr(n, std::move(edges));
}

}  // namespace glouvain::gen
