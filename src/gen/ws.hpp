// Watts–Strogatz small-world rewiring: a k-regular ring with a
// fraction of edges rewired uniformly. Low-variance degrees with
// tunable community blur; used in property tests as the "in between"
// regime between meshes and social graphs.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace glouvain::gen {

/// n vertices on a ring, each joined to its k nearest neighbours on
/// each side, then every edge rewired with probability beta.
graph::Csr watts_strogatz(graph::VertexId n, unsigned k, double beta,
                          std::uint64_t seed);

}  // namespace glouvain::gen
