// Regular mesh graphs: the Florida-collection FEM/optimization matrices
// of Table 1 (audikw_1, bone010, nlpkkt*, channel-500…) are stencils on
// 2-D/3-D grids. A 27-point 3-D stencil reproduces their degree range
// (~13–60) and — crucially for Figure 6 — their *lack* of an initial
// community structure at the natural scale, which is what triggers the
// paper's pathological mid-stage behaviour on nlpkkt and channel-500.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace glouvain::gen {

/// nx*ny grid, 8-neighbour (Moore) or 4-neighbour stencil.
graph::Csr grid2d(graph::VertexId nx, graph::VertexId ny, bool moore = true);

/// nx*ny*nz grid, 26-neighbour (odd) or 6-neighbour stencil.
graph::Csr grid3d(graph::VertexId nx, graph::VertexId ny, graph::VertexId nz,
                  bool moore = true);

/// nlpkkt-like: 3-D 26-neighbour grid with an extra long-range
/// "constraint" edge per vertex (KKT coupling), which further delays
/// community formation. `coupling_stride` is the id distance of the
/// extra edges.
graph::Csr kkt_mesh(graph::VertexId nx, graph::VertexId ny, graph::VertexId nz,
                    graph::VertexId coupling_stride, std::uint64_t seed);

}  // namespace glouvain::gen
