// Timestamped delta-batch generator for the dynamic-graph benchmarks:
// evolves a graph whose community structure is known (e.g. the planted
// labels of gen::planted_partition) through a sequence of edge churn
// epochs, tracking the live edge set so deletions always hit existing
// edges and insertions never duplicate one.
//
// Modes:
//   CommunityPreserving — every epoch deletes a random `churn_fraction`
//     of the current edges and inserts the same number of new
//     INTRA-community edges, so the planted structure survives; the
//     warm-start benchmark's steady-state workload.
//   CommunityMerging — deletions as above, but each epoch's insertions
//     all run between one randomly chosen PAIR of communities, stitching
//     them together epoch by epoch; stresses frontier closure and the
//     fall-through aggregation hierarchy.
//
// Batch `stamp`s are the epoch index (1-based). Insertion weights are
// exactly 1.0, keeping the rebuilt-CSR-equals-fresh-build invariant
// test bitwise (integer-valued sums commute in floating point).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "stream/delta.hpp"

namespace glouvain::gen {

enum class ChurnMode {
  CommunityPreserving,
  CommunityMerging,
};

struct ChurnParams {
  std::uint64_t epochs = 8;
  /// Edges deleted (and inserted) per epoch, as a fraction of the
  /// CURRENT edge count; clamped to at least 1 edge per epoch.
  double churn_fraction = 0.01;
  ChurnMode mode = ChurnMode::CommunityPreserving;
  std::uint64_t seed = 1;
};

/// `community` holds one label per vertex of `graph` (any dense-ish
/// labeling works; gen::SbmResult::ground_truth is the usual source).
/// Returns `epochs` Deltas meant to be applied in order.
std::vector<stream::Delta> churn(const graph::Csr& graph,
                                 std::span<const graph::Community> community,
                                 const ChurnParams& params = {});

}  // namespace glouvain::gen
