// Minimal command-line option parser shared by the benchmark harnesses
// and example programs. Supports `--key value`, `--key=value` and bare
// boolean flags, with typed accessors, defaults, and auto-generated
// usage text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace glouvain::util {

class Options {
 public:
  /// Parse argv. Unknown options are collected and reported by
  /// `unknown()` so harnesses can warn rather than crash.
  Options(int argc, const char* const* argv);

  /// Declare an option (for usage text) and fetch its value.
  std::string get_string(const std::string& key, const std::string& def,
                         const std::string& help = "");
  std::int64_t get_int(const std::string& key, std::int64_t def,
                       const std::string& help = "");
  double get_double(const std::string& key, double def,
                    const std::string& help = "");
  /// Declaring a key as a flag reclassifies a token that was greedily
  /// parsed as its value ("--flag pos1") back into a positional
  /// argument, so flags and positionals mix freely.
  bool get_flag(const std::string& key, const std::string& help = "");

  bool has(const std::string& key) const;

  /// Positional (non-option) arguments, in command-line order. Call
  /// after all get_flag declarations (flags may reclaim positionals).
  const std::vector<std::string>& positional() const;

  /// Options present on the command line but never declared.
  std::vector<std::string> unknown() const;

  /// True if --help / -h was passed.
  bool help_requested() const { return help_; }

  /// Usage text assembled from every get_* declaration made so far.
  std::string usage(const std::string& program_summary) const;

 private:
  struct Declared {
    std::string help;
    std::string default_value;
  };
  struct Value {
    std::string text;
    /// Index of the value token in the original argv order if it came
    /// from a separate "--key value" token; -1 for "--key=value" and
    /// bare flags. Used by get_flag to restore a misparsed positional.
    int separate_token_order = -1;
  };
  std::map<std::string, Value> values_;
  std::map<std::string, Declared> declared_;
  std::vector<std::pair<int, std::string>> positional_ordered_;
  mutable std::vector<std::string> positional_cache_;
  std::string program_;
  bool help_ = false;
};

}  // namespace glouvain::util
