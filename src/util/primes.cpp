#include "util/primes.hpp"

#include <algorithm>
#include <array>

namespace glouvain::util {

namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t powmod(std::uint64_t a, std::uint64_t e, std::uint64_t m) noexcept {
  std::uint64_t r = 1;
  a %= m;
  while (e) {
    if (e & 1) r = mulmod(r, a, m);
    a = mulmod(a, a, m);
    e >>= 1;
  }
  return r;
}

bool miller_rabin(std::uint64_t n, std::uint64_t a) noexcept {
  if (n % a == 0) return n == a;
  std::uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  std::uint64_t x = powmod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 1; i < s; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Sprp bases proven sufficient for all n < 2^64 (Sinclair, 2011).
  for (std::uint64_t a : {2ULL, 325ULL, 9375ULL, 28178ULL, 450775ULL, 9780504ULL, 1795265022ULL}) {
    if (!miller_rabin(n, a)) return false;
  }
  return true;
}

std::uint64_t next_prime_atleast(std::uint64_t n) noexcept {
  if (n <= 2) return 2;
  if ((n & 1) == 0) ++n;
  while (!is_prime(n)) n += 2;
  return n;
}

PrimeTable::PrimeTable(std::uint64_t first, std::uint64_t limit, double factor) {
  std::uint64_t target = std::max<std::uint64_t>(first, 2);
  while (target <= limit) {
    std::uint64_t p = next_prime_atleast(target);
    ladder_.push_back(p);
    auto next = static_cast<std::uint64_t>(static_cast<double>(p) * factor);
    target = std::max(next, p + 2);
  }
}

std::uint64_t PrimeTable::lookup(std::uint64_t x) const noexcept {
  auto it = std::lower_bound(ladder_.begin(), ladder_.end(), x);
  if (it == ladder_.end()) return next_prime_atleast(x);
  return *it;
}

const PrimeTable& PrimeTable::global() {
  static const PrimeTable table;
  return table;
}

std::uint64_t hash_capacity_for_degree(std::uint64_t degree) noexcept {
  const std::uint64_t want = std::max<std::uint64_t>(
      3, static_cast<std::uint64_t>(1.5 * static_cast<double>(degree)) + 1);
  return PrimeTable::global().lookup(want);
}

namespace {

constexpr std::size_t kParamsLutDegrees = 4096;

HashTableParams make_hash_params(std::uint64_t degree) noexcept {
  const std::uint64_t cap = hash_capacity_for_degree(degree);
  HashTableParams p;
  p.capacity = static_cast<std::uint32_t>(cap);
  p.magic_capacity = ~std::uint64_t{0} / cap + 1;
  p.magic_capacity_minus1 = ~std::uint64_t{0} / (cap - 1) + 1;
  return p;
}

}  // namespace

HashTableParams hash_params_for_degree(std::uint64_t degree) noexcept {
  // Dense per-degree table (not per-prime): the kernel index is the
  // degree itself, so the lookup is one load. ~100KB of static data,
  // built once, heap-free.
  static const auto lut = [] {
    std::array<HashTableParams, kParamsLutDegrees + 1> t{};
    for (std::size_t d = 0; d <= kParamsLutDegrees; ++d) {
      t[d] = make_hash_params(d);
    }
    return t;
  }();
  if (degree <= kParamsLutDegrees) return lut[degree];
  return make_hash_params(degree);
}

}  // namespace glouvain::util
