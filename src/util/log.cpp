#include "util/log.hpp"

#include <cstdarg>

namespace glouvain::util {

LogLevel& log_level() noexcept {
  static LogLevel level = LogLevel::Info;
  return level;
}

namespace detail {

void vlog(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  static const char* tags[] = {"ERROR", "WARN ", "INFO ", "DEBUG"};
  std::fprintf(stderr, "[%s] ", tags[static_cast<int>(level)]);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace glouvain::util
