// Wall-clock timing utilities used by the per-stage instrumentation of
// the Louvain drivers and by every benchmark harness.
#pragma once

#include <chrono>

namespace glouvain::util {

/// Monotonic wall-clock stopwatch with sub-microsecond resolution.
class Timer {
 public:
  Timer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals — one per
/// algorithm stage so phases can be summed over a whole run.
class Accumulator {
 public:
  void start() noexcept { timer_.reset(); running_ = true; }

  void stop() noexcept {
    if (running_) {
      total_ += timer_.seconds();
      ++intervals_;
      running_ = false;
    }
  }

  double seconds() const noexcept { return total_; }
  long intervals() const noexcept { return intervals_; }
  void clear() noexcept { total_ = 0; intervals_ = 0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0;
  long intervals_ = 0;
  bool running_ = false;
};

/// RAII guard adding an interval to an Accumulator.
class ScopedInterval {
 public:
  explicit ScopedInterval(Accumulator& acc) noexcept : acc_(acc) { acc_.start(); }
  ~ScopedInterval() { acc_.stop(); }
  ScopedInterval(const ScopedInterval&) = delete;
  ScopedInterval& operator=(const ScopedInterval&) = delete;

 private:
  Accumulator& acc_;
};

}  // namespace glouvain::util
