// Deterministic, seedable pseudo-random number generation.
//
// All stochastic pieces of the library (graph generators, tie shuffling,
// test fixtures) draw from these engines so that every experiment is
// reproducible from a single 64-bit seed. We deliberately avoid
// std::mt19937 for speed and for a compact, documented state that can be
// split into independent per-thread streams.
#pragma once

#include <cstdint>

namespace glouvain::util {

/// SplitMix64: tiny 64-bit generator, mainly used to seed other engines
/// and to derive independent streams from one master seed.
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality general-purpose engine.
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators", ACM TOMS 2021.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// True with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Derive an independent stream (e.g. one per worker thread).
  Xoshiro256 split() noexcept { return Xoshiro256(next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Stateless hash of a 64-bit value; handy for per-element deterministic
/// "randomness" (e.g. geometric coordinates derived from a vertex id).
constexpr std::uint64_t hash64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace glouvain::util
