#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace glouvain::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Right) {
  if (!aligns_.empty()) aligns_[0] = Align::Left;  // first column usually a name
}

Table& Table::set_align(std::size_t column, Align a) {
  assert(column < aligns_.size());
  aligns_[column] = a;
  return *this;
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = widths[c] - row[c].size();
      if (c) os << "  ";
      if (aligns_[c] == Align::Right) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string Table::count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::human(double v) {
  const char* suffix = "";
  double x = v;
  if (std::abs(v) >= 1e9) { x = v / 1e9; suffix = "G"; }
  else if (std::abs(v) >= 1e6) { x = v / 1e6; suffix = "M"; }
  else if (std::abs(v) >= 1e3) { x = v / 1e3; suffix = "k"; }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f%s", x, suffix);
  return buf;
}

std::string Table::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace glouvain::util
