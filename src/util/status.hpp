// Small Status / StatusOr error vocabulary shared by the I/O layer,
// the service, and the CLI. Replaces ad-hoc bool/exception reporting
// where the caller wants to branch on the *kind* of failure: each code
// maps to a distinct process exit code (exit_code()) and carries a
// human-readable message. Header-only; no dependencies beyond std.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace glouvain::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< malformed input / unknown name
  kNotFound,           ///< missing file, unknown id
  kIoError,            ///< read/write failed mid-stream
  kResourceExhausted,  ///< backpressure: a bounded queue refused work
  kDeadlineExceeded,   ///< a deadline fired before the work ran
  kCancelled,          ///< the caller withdrew the work
  kFailedPrecondition, ///< object not in a state to accept the call
  kUnavailable,        ///< transient: retry may succeed
  kInternal,           ///< a backend threw / invariant broke
};

inline const char* to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "?";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  ///< OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok_status() { return {}; }
  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status io_error(std::string m) {
    return {StatusCode::kIoError, std::move(m)};
  }
  static Status resource_exhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status deadline_exceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  static Status cancelled(std::string m) {
    return {StatusCode::kCancelled, std::move(m)};
  }
  static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  std::string to_string() const {
    if (ok()) return "ok";
    std::string s = util::to_string(code_);
    if (!message_.empty()) s += ": " + message_;
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Process exit code for a Status: 0 for OK, a distinct small integer
/// per failure code (documented in README "Exit codes").
inline int exit_code(const Status& status) noexcept {
  switch (status.code()) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 2;
    case StatusCode::kNotFound: return 3;
    case StatusCode::kIoError: return 4;
    case StatusCode::kResourceExhausted: return 5;
    case StatusCode::kDeadlineExceeded: return 6;
    case StatusCode::kCancelled: return 7;
    case StatusCode::kFailedPrecondition: return 8;
    case StatusCode::kUnavailable: return 9;
    case StatusCode::kInternal: return 10;
  }
  return 10;
}

/// A value or the Status explaining its absence. Accessing value() on
/// an error throws std::logic_error (programming error, not data
/// error) — check ok() first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      status_ = Status::internal("StatusOr constructed from OK status");
    }
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return status_.ok(); }
  const Status& status() const noexcept { return status_; }

  T& value() & { return checked(); }
  const T& value() const& { return const_cast<StatusOr*>(this)->checked(); }
  T&& value() && { return std::move(checked()); }

  T& operator*() & { return checked(); }
  const T& operator*() const& { return const_cast<StatusOr*>(this)->checked(); }
  T* operator->() { return &checked(); }
  const T* operator->() const {
    return &const_cast<StatusOr*>(this)->checked();
  }

 private:
  T& checked() {
    if (!value_) throw std::logic_error("StatusOr: value() on " + status_.to_string());
    return *value_;
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace glouvain::util
