// Prime-number helpers for hash-table sizing.
//
// The paper sizes every per-vertex hash table as "the smallest value
// larger than 1.5 times the degree" drawn "from a list of precomputed
// prime numbers" (§4, computeMove). PrimeTable reproduces that list:
// a geometric ladder of primes, plus an exact next-prime fallback for
// sizes past the end of the ladder.
#pragma once

#include <cstdint>
#include <vector>

namespace glouvain::util {

/// Deterministic Miller-Rabin primality test, valid for all 64-bit n.
bool is_prime(std::uint64_t n) noexcept;

/// Smallest prime >= n (n <= 2^63 assumed; Bertrand guarantees existence).
std::uint64_t next_prime_atleast(std::uint64_t n) noexcept;

/// Precomputed geometric ladder of primes. lookup(x) returns the
/// smallest ladder prime >= x in O(log #ladder); the ladder growth
/// factor bounds the memory overshoot at ~`factor`.
class PrimeTable {
 public:
  /// Build a ladder covering [first, limit] with the given growth factor.
  explicit PrimeTable(std::uint64_t first = 3, std::uint64_t limit = (1ULL << 33),
                      double factor = 1.12);

  /// Smallest tabulated prime >= x; falls back to exact computation if
  /// x exceeds the ladder limit.
  std::uint64_t lookup(std::uint64_t x) const noexcept;

  const std::vector<std::uint64_t>& ladder() const noexcept { return ladder_; }

  /// Process-wide shared instance (construction is cheap but not free).
  static const PrimeTable& global();

 private:
  std::vector<std::uint64_t> ladder_;
};

/// Hash-table capacity rule from the paper: smallest listed prime
/// > 1.5 * degree (and at least 3, so even degree-1 vertices get a
/// usable open-addressing table).
std::uint64_t hash_capacity_for_degree(std::uint64_t degree) noexcept;

/// Everything the per-vertex kernels need to size and probe one
/// open-addressing table: the capacity plus the fastmod magic
/// constants for capacity and capacity-1 (magic = ~0 / d + 1; see
/// core::FastMod). Bundled so the hot kernels pay one lookup instead
/// of a ladder binary search and two 64-bit divisions per vertex.
struct HashTableParams {
  std::uint32_t capacity = 3;
  std::uint64_t magic_capacity = 0;
  std::uint64_t magic_capacity_minus1 = 0;
};

/// hash_capacity_for_degree plus the probe magics. O(1) table load for
/// degrees up to the LUT bound (covers every shared-memory bucket);
/// larger degrees fall back to the ladder search. Always agrees with
/// hash_capacity_for_degree.
HashTableParams hash_params_for_degree(std::uint64_t degree) noexcept;

}  // namespace glouvain::util
