// Prime-number helpers for hash-table sizing.
//
// The paper sizes every per-vertex hash table as "the smallest value
// larger than 1.5 times the degree" drawn "from a list of precomputed
// prime numbers" (§4, computeMove). PrimeTable reproduces that list:
// a geometric ladder of primes, plus an exact next-prime fallback for
// sizes past the end of the ladder.
#pragma once

#include <cstdint>
#include <vector>

namespace glouvain::util {

/// Deterministic Miller-Rabin primality test, valid for all 64-bit n.
bool is_prime(std::uint64_t n) noexcept;

/// Smallest prime >= n (n <= 2^63 assumed; Bertrand guarantees existence).
std::uint64_t next_prime_atleast(std::uint64_t n) noexcept;

/// Precomputed geometric ladder of primes. lookup(x) returns the
/// smallest ladder prime >= x in O(log #ladder); the ladder growth
/// factor bounds the memory overshoot at ~`factor`.
class PrimeTable {
 public:
  /// Build a ladder covering [first, limit] with the given growth factor.
  explicit PrimeTable(std::uint64_t first = 3, std::uint64_t limit = (1ULL << 33),
                      double factor = 1.12);

  /// Smallest tabulated prime >= x; falls back to exact computation if
  /// x exceeds the ladder limit.
  std::uint64_t lookup(std::uint64_t x) const noexcept;

  const std::vector<std::uint64_t>& ladder() const noexcept { return ladder_; }

  /// Process-wide shared instance (construction is cheap but not free).
  static const PrimeTable& global();

 private:
  std::vector<std::uint64_t> ladder_;
};

/// Hash-table capacity rule from the paper: smallest listed prime
/// > 1.5 * degree (and at least 3, so even degree-1 vertices get a
/// usable open-addressing table).
std::uint64_t hash_capacity_for_degree(std::uint64_t degree) noexcept;

}  // namespace glouvain::util
