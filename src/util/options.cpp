#include "util/options.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace glouvain::util {

Options::Options(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  int order = 0;
  for (int i = 1; i < argc; ++i, ++order) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        values_[body.substr(0, eq)] = {body.substr(eq + 1), -1};
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        // Greedy "--key value"; get_flag() can undo this later.
        values_[body] = {argv[i + 1], order + 1};
        ++i;
        ++order;
      } else {
        values_[body] = {"true", -1};  // bare flag
      }
    } else {
      positional_ordered_.emplace_back(order, arg);
    }
  }
}

std::string Options::get_string(const std::string& key, const std::string& def,
                                const std::string& help) {
  declared_[key] = {help, def};
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second.text;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t def,
                              const std::string& help) {
  declared_[key] = {help, std::to_string(def)};
  auto it = values_.find(key);
  return it == values_.end() ? def
                             : std::strtoll(it->second.text.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double def,
                           const std::string& help) {
  declared_[key] = {help, std::to_string(def)};
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.text.c_str(), nullptr);
}

bool Options::get_flag(const std::string& key, const std::string& help) {
  declared_[key] = {help, "false"};
  auto it = values_.find(key);
  if (it == values_.end()) return false;
  if (it->second.separate_token_order >= 0) {
    // "--flag value": the value was actually a positional argument.
    positional_ordered_.emplace_back(it->second.separate_token_order,
                                     it->second.text);
    it->second = {"true", -1};
  }
  return it->second.text != "false" && it->second.text != "0";
}

bool Options::has(const std::string& key) const {
  return values_.count(key) != 0;
}

const std::vector<std::string>& Options::positional() const {
  auto sorted = positional_ordered_;
  std::sort(sorted.begin(), sorted.end());
  positional_cache_.clear();
  for (auto& [order, text] : sorted) {
    (void)order;
    positional_cache_.push_back(text);
  }
  return positional_cache_;
}

std::vector<std::string> Options::unknown() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    (void)v;
    if (declared_.find(k) == declared_.end()) out.push_back(k);
  }
  return out;
}

std::string Options::usage(const std::string& program_summary) const {
  std::ostringstream os;
  os << program_ << " — " << program_summary << "\n\nOptions:\n";
  for (const auto& [k, d] : declared_) {
    os << "  --" << k;
    if (!d.default_value.empty()) os << " (default: " << d.default_value << ")";
    if (!d.help.empty()) os << "\n      " << d.help;
    os << "\n";
  }
  os << "  --help\n      Print this message.\n";
  return os.str();
}

}  // namespace glouvain::util
