// Tiny leveled logger. Verbosity is a process-wide knob so harnesses can
// expose a --verbose flag without threading a logger through every API.
#pragma once

#include <cstdio>
#include <utility>

namespace glouvain::util {

enum class LogLevel : int { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Process-wide verbosity (default: Info). Not synchronized — set it
/// once at startup before spawning workers.
LogLevel& log_level() noexcept;

namespace detail {
void vlog(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;
}  // namespace detail

template <typename... Args>
void log_error(const char* fmt, Args&&... args) {
  detail::vlog(LogLevel::Error, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(const char* fmt, Args&&... args) {
  detail::vlog(LogLevel::Warn, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(const char* fmt, Args&&... args) {
  detail::vlog(LogLevel::Info, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(const char* fmt, Args&&... args) {
  detail::vlog(LogLevel::Debug, fmt, std::forward<Args>(args)...);
}

}  // namespace glouvain::util
