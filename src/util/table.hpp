// Fixed-width ASCII table printing for the benchmark harnesses; every
// table/figure reproduction prints through this so outputs align and
// can be diffed or scraped.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace glouvain::util {

class Table {
 public:
  enum class Align { Left, Right };

  /// Declare the columns up front; rows must match in arity.
  explicit Table(std::vector<std::string> headers);

  Table& set_align(std::size_t column, Align a);

  /// Append a row of preformatted cells.
  void add_row(std::vector<std::string> cells);

  /// Render with a header rule; widths are computed from content.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  // Cell formatting helpers.
  static std::string fixed(double v, int precision);
  static std::string sci(double v, int precision);
  static std::string count(std::uint64_t v);      // 1234567 -> "1,234,567"
  static std::string human(double v);             // 1234567 -> "1.23M"
  static std::string percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace glouvain::util
