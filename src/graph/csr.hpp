// Compressed-sparse-row representation of an undirected weighted graph.
//
// Storage conventions (kept identical to the original Louvain code of
// Blondel et al., so modularity values are directly comparable, and to
// the paper's device layout of `vertices` / `edges` / `weights`):
//   * every non-loop edge {u, v} appears in BOTH rows u and v;
//   * a self-loop {v, v} appears ONCE in row v;
//   * strength(v) = sum of row v's weights (self-loop counted once);
//   * total_weight() = sum of all strengths
//                    = 2 * (sum of non-loop edge weights) + (loop weights),
//     the "2m" denominator of the modularity formula.
// These conventions are invariant under community aggregation, which is
// what makes multi-level modularity comparable across levels.
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "prim/scratch.hpp"

namespace glouvain::graph {

class Csr {
 public:
  Csr() : offsets_(1, 0) {}

  /// Adopt prebuilt arrays. offsets.size() == n+1; adj/weights have
  /// offsets.back() entries. Invariants are asserted, not repaired —
  /// use Builder for untrusted input.
  Csr(std::vector<EdgeIdx> offsets, std::vector<VertexId> adj,
      std::vector<Weight> weights);

  /// Same, but the totals pass draws its per-worker partials from
  /// `scratch` instead of the heap (the allocation-free hot path).
  Csr(std::vector<EdgeIdx> offsets, std::vector<VertexId> adj,
      std::vector<Weight> weights, prim::Scratch& scratch);

  VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Directed arc count = 2 * (non-loop edges) + loops.
  EdgeIdx num_arcs() const noexcept { return offsets_.back(); }

  /// Undirected edge count (loops counted once).
  EdgeIdx num_edges() const noexcept { return (num_arcs() + num_loops_) / 2; }

  EdgeIdx num_loops() const noexcept { return num_loops_; }

  EdgeIdx degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  EdgeIdx offset(VertexId v) const noexcept { return offsets_[v]; }

  std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {adj_.data() + offsets_[v], degree(v)};
  }

  std::span<const Weight> weights(VertexId v) const noexcept {
    return {weights_.data() + offsets_[v], degree(v)};
  }

  /// Weighted degree k_v (self-loop weight counted once; see header).
  Weight strength(VertexId v) const noexcept {
    Weight s = 0;
    for (const Weight w : weights(v)) s += w;
    return s;
  }

  /// Self-loop weight of v (0 if none).
  Weight loop_weight(VertexId v) const noexcept;

  /// The modularity denominator "2m": cached at construction.
  Weight total_weight() const noexcept { return total_weight_; }

  // Raw array views for kernels (device-global-memory analogues).
  std::span<const EdgeIdx> offsets() const noexcept { return offsets_; }
  std::span<const VertexId> adjacency() const noexcept { return adj_; }
  std::span<const Weight> edge_weights() const noexcept { return weights_; }

  /// strengths[v] = k_v for all v, computed in parallel.
  std::vector<Weight> compute_strengths() const;

  /// Structural equality (same arrays).
  friend bool operator==(const Csr&, const Csr&) = default;

  /// Surrender the backing arrays (for capacity recycling). Rvalue
  /// only: the hollowed-out Csr drops the offsets invariant (restoring
  /// it would mean allocating inside the recycle path), so afterwards
  /// it may only be destroyed or assigned to.
  struct Released {
    std::vector<EdgeIdx> offsets;
    std::vector<VertexId> adj;
    std::vector<Weight> weights;
  };
  Released release() && {
    Released r{std::move(offsets_), std::move(adj_), std::move(weights_)};
    offsets_.clear();
    adj_.clear();
    weights_.clear();
    total_weight_ = 0;
    num_loops_ = 0;
    return r;
  }

 private:
  void compute_totals(std::span<Weight> partial_w,
                      std::span<EdgeIdx> partial_loops);

  std::vector<EdgeIdx> offsets_;
  std::vector<VertexId> adj_;
  std::vector<Weight> weights_;
  Weight total_weight_ = 0;
  EdgeIdx num_loops_ = 0;
};

}  // namespace glouvain::graph
