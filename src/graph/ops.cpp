#include "graph/ops.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "simt/thread_pool.hpp"

namespace glouvain::graph {

std::string validate(const Csr& graph) {
  const VertexId n = graph.num_vertices();
  auto offsets = graph.offsets();
  auto adj = graph.adjacency();
  auto weights = graph.edge_weights();

  if (offsets.size() != static_cast<std::size_t>(n) + 1) return "offsets size mismatch";
  if (offsets[0] != 0) return "offsets[0] != 0";
  for (VertexId v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      return "offsets not monotone at vertex " + std::to_string(v);
    }
  }
  if (adj.size() != offsets[n]) return "adjacency size mismatch";

  for (VertexId v = 0; v < n; ++v) {
    VertexId prev = 0;
    bool first = true;
    EdgeIdx loops = 0;
    for (EdgeIdx i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (adj[i] >= n) return "neighbor out of range at vertex " + std::to_string(v);
      if (!first && adj[i] <= prev) {
        return "row not strictly sorted (duplicate edge?) at vertex " + std::to_string(v);
      }
      if (!(weights[i] > 0) || !std::isfinite(weights[i])) {
        return "non-positive or non-finite weight at vertex " + std::to_string(v);
      }
      if (adj[i] == v) ++loops;
      prev = adj[i];
      first = false;
    }
    if (loops > 1) return "multiple self-loops at vertex " + std::to_string(v);
  }

  // Symmetry: every arc (u, v, w) needs a matching (v, u, w).
  for (VertexId u = 0; u < n; ++u) {
    auto nbrs = graph.neighbors(u);
    auto ws = graph.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (v == u) continue;
      auto back = graph.neighbors(v);
      auto it = std::lower_bound(back.begin(), back.end(), u);
      if (it == back.end() || *it != u) {
        return "missing reverse arc " + std::to_string(v) + "->" + std::to_string(u);
      }
      const std::size_t j = static_cast<std::size_t>(it - back.begin());
      if (std::abs(graph.weights(v)[j] - ws[i]) > 1e-9 * std::max(1.0, ws[i])) {
        return "asymmetric weight on edge " + std::to_string(u) + "-" + std::to_string(v);
      }
    }
  }
  return {};
}

DegreeStats degree_stats(const Csr& graph) {
  DegreeStats stats;
  const VertexId n = graph.num_vertices();
  if (n == 0) return stats;
  stats.min_degree = graph.degree(0);
  static constexpr EdgeIdx kEdges[] = {4, 8, 16, 32, 84, 319};
  stats.bucket_counts.assign(7, 0);
  std::uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    const EdgeIdx d = graph.degree(v);
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    total += d;
    std::size_t b = 0;
    while (b < 6 && d > kEdges[b]) ++b;
    stats.bucket_counts[b] += 1;
  }
  stats.mean_degree = static_cast<double>(total) / static_cast<double>(n);
  return stats;
}

Csr permute(const Csr& graph, const std::vector<VertexId>& perm) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> inverse(n);
  for (VertexId v = 0; v < n; ++v) inverse[perm[v]] = v;

  std::vector<EdgeIdx> offsets(n + 1, 0);
  for (VertexId nv = 0; nv < n; ++nv) {
    offsets[nv + 1] = offsets[nv] + graph.degree(inverse[nv]);
  }
  std::vector<VertexId> adj(offsets[n]);
  std::vector<Weight> weights(offsets[n]);
  simt::ThreadPool::global().parallel_for(n, [&](std::size_t nv, unsigned) {
    const VertexId old = inverse[nv];
    auto nbrs = graph.neighbors(old);
    auto ws = graph.weights(old);
    std::vector<std::pair<VertexId, Weight>> row(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) row[i] = {perm[nbrs[i]], ws[i]};
    std::sort(row.begin(), row.end());
    const EdgeIdx base = offsets[nv];
    for (std::size_t i = 0; i < row.size(); ++i) {
      adj[base + i] = row[i].first;
      weights[base + i] = row[i].second;
    }
  });
  return Csr(std::move(offsets), std::move(adj), std::move(weights));
}

Csr contract_reference(const Csr& graph, const std::vector<Community>& community,
                       std::vector<VertexId>* new_id_out) {
  const VertexId n = graph.num_vertices();

  // Renumber non-empty communities consecutively, in increasing
  // community-id order (matches the newID prefix sum of Algorithm 3).
  std::vector<std::uint8_t> non_empty(n, 0);
  for (VertexId v = 0; v < n; ++v) non_empty[community[v]] = 1;
  std::vector<VertexId> new_id(n, kInvalidVertex);
  VertexId next = 0;
  for (VertexId c = 0; c < n; ++c) {
    if (non_empty[c]) new_id[c] = next++;
  }
  const VertexId nn = next;
  if (new_id_out) *new_id_out = new_id;

  // Hash neighbours of each community's members (the sequential analogue
  // of mergeCommunity).
  std::vector<std::vector<std::pair<VertexId, Weight>>> rows(nn);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId c = new_id[community[v]];
    auto& row = rows[c];
    auto nbrs = graph.neighbors(v);
    auto ws = graph.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      row.emplace_back(new_id[community[nbrs[i]]], ws[i]);
    }
  }

  std::vector<EdgeIdx> offsets(nn + 1, 0);
  std::vector<VertexId> adj;
  std::vector<Weight> weights;
  for (VertexId c = 0; c < nn; ++c) {
    auto& row = rows[c];
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    EdgeIdx count = 0;
    for (std::size_t i = 0; i < row.size();) {
      const VertexId nb = row[i].first;
      Weight w = 0;
      while (i < row.size() && row[i].first == nb) {
        w += row[i].second;
        ++i;
      }
      adj.push_back(nb);
      weights.push_back(w);
      ++count;
    }
    offsets[c + 1] = offsets[c] + count;
    row.clear();
    row.shrink_to_fit();
  }
  return Csr(std::move(offsets), std::move(adj), std::move(weights));
}

Csr induced_subgraph(const Csr& graph, std::span<const VertexId> members) {
  const auto sub_n = static_cast<VertexId>(members.size());
  std::vector<VertexId> to_sub(graph.num_vertices(), kInvalidVertex);
  for (VertexId i = 0; i < sub_n; ++i) to_sub[members[i]] = i;

  std::vector<EdgeIdx> offsets(static_cast<std::size_t>(sub_n) + 1, 0);
  for (VertexId i = 0; i < sub_n; ++i) {
    EdgeIdx kept = 0;
    for (const VertexId nb : graph.neighbors(members[i])) {
      kept += (to_sub[nb] != kInvalidVertex) ? 1 : 0;
    }
    offsets[i + 1] = offsets[i] + kept;
  }
  std::vector<VertexId> adj(offsets[sub_n]);
  std::vector<Weight> weights(offsets[sub_n]);
  simt::ThreadPool::global().parallel_for(sub_n, [&](std::size_t i, unsigned) {
    const VertexId old = members[i];
    auto nbrs = graph.neighbors(old);
    auto ws = graph.weights(old);
    std::vector<std::pair<VertexId, Weight>> row;
    row.reserve(nbrs.size());
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      const VertexId mapped = to_sub[nbrs[e]];
      if (mapped != kInvalidVertex) row.emplace_back(mapped, ws[e]);
    }
    std::sort(row.begin(), row.end());
    EdgeIdx at = offsets[i];
    for (const auto& [nb, w] : row) {
      adj[at] = nb;
      weights[at] = w;
      ++at;
    }
  });
  return Csr(std::move(offsets), std::move(adj), std::move(weights));
}

std::uint64_t count_components(const Csr& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<VertexId> stack;
  std::uint64_t components = 0;
  for (VertexId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    ++components;
    seen[s] = 1;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId nb : graph.neighbors(v)) {
        if (!seen[nb]) {
          seen[nb] = 1;
          stack.push_back(nb);
        }
      }
    }
  }
  return components;
}

}  // namespace glouvain::graph
