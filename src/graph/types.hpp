// Fundamental graph types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace glouvain::graph {

/// Vertex identifier. 32 bits covers every graph in the paper's suite
/// (largest: europe_osm, 50.9M vertices) with half the memory traffic
/// of 64-bit ids — the same choice CUDA implementations make.
using VertexId = std::uint32_t;

/// Index into the CSR adjacency/weight arrays (2|E| can exceed 2^32).
using EdgeIdx = std::uint64_t;

/// Edge weight / accumulated community weight. Double keeps modularity
/// arithmetic stable across tens of millions of accumulations.
using Weight = double;

/// Community label; communities are always a subset of vertex ids.
using Community = std::uint32_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr Community kInvalidCommunity = std::numeric_limits<Community>::max();

/// A weighted edge in coordinate form, the builder's input currency.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace glouvain::graph
