// Parallel greedy distance-1 graph coloring, after the speculative
// iterate-and-resolve scheme of Deveci, Boman, Devine & Rajamanickam
// (IPDPS 2016) — reference [8] of the paper. Used by the core
// algorithm's optional coloring-based move serialization (the exact
// mechanism Lu et al. [16] use to avoid conflicting concurrent moves)
// and ablated against the default hash sub-rounds.
#pragma once

#include <cstdint>
#include <vector>

#include <string>

#include "graph/csr.hpp"

namespace glouvain::graph {

struct Coloring {
  std::vector<std::uint32_t> color;  ///< per-vertex color in [0, num_colors)
  std::uint32_t num_colors = 0;
  int rounds = 0;  ///< speculative iterations until conflict-free
};

/// Proper distance-1 coloring: no edge joins two vertices of the same
/// color (self-loops ignored). Greedy first-fit per vertex; conflicts
/// from concurrent speculation are detected and re-colored until none
/// remain. Number of colors is at most max_degree + 1.
Coloring color_graph(const Csr& graph);

/// Empty string if `coloring` is a proper coloring of `graph`, else a
/// diagnostic (for tests).
std::string validate_coloring(const Csr& graph, const Coloring& coloring);

}  // namespace glouvain::graph
