#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

#include "prim/scan.hpp"
#include "simt/atomics.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::graph {

namespace {

/// Sort each CSR row by neighbor id and merge duplicates (summing
/// weights); returns per-row post-merge sizes.
std::vector<EdgeIdx> canonicalize_rows(std::vector<EdgeIdx>& offsets,
                                       std::vector<VertexId>& adj,
                                       std::vector<Weight>& weights) {
  const VertexId n = static_cast<VertexId>(offsets.size() - 1);
  std::vector<EdgeIdx> new_degree(n, 0);
  auto& pool = simt::ThreadPool::global();
  pool.parallel_for(n, [&](std::size_t v, unsigned) {
    const EdgeIdx b = offsets[v], e = offsets[v + 1];
    if (b == e) return;
    // Sort (neighbor, weight) pairs of the row by neighbor.
    std::vector<std::pair<VertexId, Weight>> row;
    row.reserve(e - b);
    for (EdgeIdx i = b; i < e; ++i) row.emplace_back(adj[i], weights[i]);
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& c) { return a.first < c.first; });
    EdgeIdx out = b;
    for (std::size_t i = 0; i < row.size();) {
      VertexId nb = row[i].first;
      Weight w = 0;
      while (i < row.size() && row[i].first == nb) {
        w += row[i].second;
        ++i;
      }
      adj[out] = nb;
      weights[out] = w;
      ++out;
    }
    new_degree[v] = out - b;
  });
  return new_degree;
}

}  // namespace

Csr build_csr(VertexId num_vertices, std::vector<Edge> edges,
              const BuildOptions& options) {
  auto& pool = simt::ThreadPool::global();

  for (const Edge& e : edges) {
    if (e.u >= num_vertices || e.v >= num_vertices) {
      throw std::out_of_range("build_csr: edge endpoint out of range");
    }
  }

  if (options.drop_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const Edge& e) { return e.u == e.v; }),
                edges.end());
  }

  if (options.symmetrize) {
    const std::size_t original = edges.size();
    std::size_t non_loops = 0;
    for (std::size_t i = 0; i < original; ++i) {
      if (edges[i].u != edges[i].v) ++non_loops;
    }
    edges.reserve(original + non_loops);
    for (std::size_t i = 0; i < original; ++i) {
      if (edges[i].u != edges[i].v) {
        edges.push_back({edges[i].v, edges[i].u, edges[i].w});
      }
    }
  }

  // Degree count (atomic histogram), offsets scan, then scatter.
  std::vector<EdgeIdx> degree(num_vertices, 0);
  pool.parallel_for(edges.size(), [&](std::size_t i, unsigned) {
    simt::atomic_add(degree[edges[i].u], EdgeIdx{1});
  });

  std::vector<EdgeIdx> offsets(num_vertices + 1, 0);
  offsets[num_vertices] = prim::exclusive_scan(
      std::span<const EdgeIdx>(degree),
      std::span<EdgeIdx>(offsets.data(), num_vertices), pool);

  std::vector<EdgeIdx> cursor(offsets.begin(), offsets.begin() + num_vertices);
  std::vector<VertexId> adj(edges.size());
  std::vector<Weight> weights(edges.size());
  pool.parallel_for(edges.size(), [&](std::size_t i, unsigned) {
    const EdgeIdx slot = simt::atomic_add(cursor[edges[i].u], EdgeIdx{1});
    adj[slot] = edges[i].v;
    weights[slot] = edges[i].w;
  });
  edges.clear();
  edges.shrink_to_fit();

  if (options.combine_duplicates) {
    std::vector<EdgeIdx> merged_degree = canonicalize_rows(offsets, adj, weights);
    std::vector<EdgeIdx> new_offsets(num_vertices + 1, 0);
    const EdgeIdx total = prim::exclusive_scan(
        std::span<const EdgeIdx>(merged_degree),
        std::span<EdgeIdx>(new_offsets.data(), num_vertices), pool);
    new_offsets[num_vertices] = total;

    std::vector<VertexId> new_adj(total);
    std::vector<Weight> new_weights(total);
    pool.parallel_for(num_vertices, [&](std::size_t v, unsigned) {
      const EdgeIdx src = offsets[v];
      const EdgeIdx dst = new_offsets[v];
      for (EdgeIdx k = 0; k < merged_degree[v]; ++k) {
        new_adj[dst + k] = adj[src + k];
        new_weights[dst + k] = weights[src + k];
      }
    });
    return Csr(std::move(new_offsets), std::move(new_adj), std::move(new_weights));
  }

  // Still sort rows for deterministic iteration order.
  pool.parallel_for(num_vertices, [&](std::size_t v, unsigned) {
    const EdgeIdx b = offsets[v], e = offsets[v + 1];
    std::vector<std::pair<VertexId, Weight>> row;
    row.reserve(e - b);
    for (EdgeIdx i = b; i < e; ++i) row.emplace_back(adj[i], weights[i]);
    std::sort(row.begin(), row.end());
    for (EdgeIdx i = b; i < e; ++i) {
      adj[i] = row[i - b].first;
      weights[i] = row[i - b].second;
    }
  });
  return Csr(std::move(offsets), std::move(adj), std::move(weights));
}

Csr build_csr(std::vector<Edge> edges, const BuildOptions& options) {
  VertexId n = 0;
  for (const Edge& e : edges) {
    n = std::max({n, static_cast<VertexId>(e.u + 1), static_cast<VertexId>(e.v + 1)});
  }
  return build_csr(n, std::move(edges), options);
}

}  // namespace glouvain::graph
