#include "graph/fingerprint.hpp"

#include <bit>

namespace glouvain::graph {

namespace {

struct Mixer {
  std::uint64_t state;

  void absorb(std::uint64_t x) noexcept {
    state += x * 0x9e3779b97f4a7c15ULL;
    state = (state ^ (state >> 30)) * 0xbf58476d1ce4e5b9ULL;
    state = (state ^ (state >> 27)) * 0x94d049bb133111ebULL;
    state ^= state >> 31;
  }
};

}  // namespace

Fingerprint128 fingerprint128(const Csr& graph) {
  Mixer a{0x8f14e45fceea167aULL};
  Mixer b{0x243f6a8885a308d3ULL};

  // Array lengths first so prefixes of longer arrays cannot alias.
  a.absorb(graph.num_vertices());
  b.absorb(graph.num_arcs());

  for (const EdgeIdx off : graph.offsets()) {
    a.absorb(off);
    b.absorb(off + 0x5bf0a8b1ULL);
  }
  for (const VertexId v : graph.adjacency()) {
    a.absorb(v);
    b.absorb(~static_cast<std::uint64_t>(v));
  }
  for (const Weight w : graph.edge_weights()) {
    const auto bits = std::bit_cast<std::uint64_t>(w);
    a.absorb(bits);
    b.absorb(bits ^ 0xa5a5a5a5a5a5a5a5ULL);
  }
  return {a.state, b.state};
}

}  // namespace glouvain::graph
