#include "graph/coloring.hpp"

#include <algorithm>
#include <string>

#include "simt/atomics.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::graph {

namespace {
constexpr std::uint32_t kUncolored = ~std::uint32_t{0};
}

Coloring color_graph(const Csr& graph) {
  const VertexId n = graph.num_vertices();
  auto& pool = simt::ThreadPool::global();

  Coloring result;
  result.color.assign(n, kUncolored);

  // Worklist of vertices still to color; initially everyone.
  std::vector<VertexId> work(n);
  for (VertexId v = 0; v < n; ++v) work[v] = v;

  // Per-worker forbidden-color scratch, sized by a degree bound.
  EdgeIdx max_degree = 0;
  for (VertexId v = 0; v < n; ++v) max_degree = std::max(max_degree, graph.degree(v));
  const auto palette = static_cast<std::uint32_t>(max_degree + 1);

  std::vector<std::vector<std::uint32_t>> forbidden(pool.size());
  for (auto& f : forbidden) f.assign(palette, kUncolored);

  std::vector<VertexId> conflicted;
  while (!work.empty()) {
    ++result.rounds;

    // Speculative phase: every worklist vertex greedily takes the
    // smallest color no (currently colored) neighbour holds.
    pool.parallel_for(work.size(), [&](std::size_t i, unsigned worker) {
      const VertexId v = work[i];
      auto& f = forbidden[worker];
      for (const VertexId nb : graph.neighbors(v)) {
        if (nb == v) continue;
        // Concurrent speculative reads; conflicts are resolved below.
        const std::uint32_t c = simt::atomic_load(result.color[nb]);
        if (c != kUncolored && c < palette) f[c] = v;  // stamp trick: no reset
      }
      std::uint32_t pick = 0;
      while (pick < palette && f[pick] == v) ++pick;
      simt::atomic_store(result.color[v], pick);
    });

    // Conflict detection: of two same-colored neighbours, the larger id
    // loses and is re-queued (deterministic tie resolution).
    std::vector<std::vector<VertexId>> lost(pool.size());
    pool.parallel_for(work.size(), [&](std::size_t i, unsigned worker) {
      const VertexId v = work[i];
      for (const VertexId nb : graph.neighbors(v)) {
        if (nb == v) continue;
        if (result.color[nb] == result.color[v] && v > nb) {
          lost[worker].push_back(v);
          break;
        }
      }
    });
    conflicted.clear();
    for (auto& l : lost) {
      conflicted.insert(conflicted.end(), l.begin(), l.end());
    }
    for (const VertexId v : conflicted) result.color[v] = kUncolored;
    work.swap(conflicted);
  }

  std::uint32_t max_color = 0;
  for (VertexId v = 0; v < n; ++v) max_color = std::max(max_color, result.color[v]);
  result.num_colors = n ? max_color + 1 : 0;
  return result;
}

std::string validate_coloring(const Csr& graph, const Coloring& coloring) {
  if (coloring.color.size() != graph.num_vertices()) return "size mismatch";
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (coloring.color[v] >= coloring.num_colors) {
      return "color out of range at vertex " + std::to_string(v);
    }
    for (const VertexId nb : graph.neighbors(v)) {
      if (nb != v && coloring.color[nb] == coloring.color[v]) {
        return "conflict on edge " + std::to_string(v) + "-" + std::to_string(nb);
      }
    }
  }
  return {};
}

}  // namespace glouvain::graph
