#include "graph/io.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace glouvain::graph {

namespace {

using util::Status;
using util::StatusOr;

std::string msg(const std::string& path, const std::string& what) {
  return "graph io: " + path + ": " + what;
}

Status cannot_open(const std::string& path) {
  return Status::not_found(msg(path, "cannot open"));
}

Status malformed(const std::string& path, const std::string& what) {
  return Status::invalid_argument(msg(path, what));
}

Status io_failure(const std::string& path, const std::string& what) {
  return Status::io_error(msg(path, what));
}

/// VertexId is 32-bit with the top value reserved as kInvalidVertex;
/// ids at or above it would silently wrap under static_cast. Every
/// loader funnels untrusted counts/ids through these guards.
bool fits_vertex_id(unsigned long long id) {
  return id < kInvalidVertex;
}

Status vertex_overflow(const std::string& path, unsigned long long value) {
  return Status::invalid_argument(
      msg(path, "vertex id/count " + std::to_string(value) +
                    " exceeds the 32-bit vertex-id space"));
}

bool is_comment(const std::string& line) {
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

/// The throwing wrappers preserve the historical exception contract:
/// the status message already carries "graph io: <path>: <what>".
Csr value_or_throw(StatusOr<Csr> result) {
  if (!result.ok()) throw std::runtime_error(std::string(result.status().message()));
  return std::move(result).value();
}

void ok_or_throw(const Status& status) {
  if (!status.ok()) throw std::runtime_error(std::string(status.message()));
}

}  // namespace

StatusOr<Csr> try_load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) return cannot_open(path);
  std::vector<Edge> edges;
  std::string line;
  while (std::getline(in, line)) {
    if (is_comment(line)) continue;
    std::istringstream ss(line);
    unsigned long long u, v;
    double w = 1.0;
    if (!(ss >> u >> v)) return malformed(path, "bad edge line: " + line);
    ss >> w;
    if (!fits_vertex_id(u)) return vertex_overflow(path, u);
    if (!fits_vertex_id(v)) return vertex_overflow(path, v);
    edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v), w});
  }
  if (in.bad()) return io_failure(path, "read error");
  return build_csr(std::move(edges));
}

Csr load_edge_list(const std::string& path) {
  return value_or_throw(try_load_edge_list(path));
}

StatusOr<Csr> try_load_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) return cannot_open(path);
  std::string header;
  if (!std::getline(in, header) || header.rfind("%%MatrixMarket", 0) != 0) {
    return malformed(path, "missing MatrixMarket banner");
  }
  const bool pattern = header.find("pattern") != std::string::npos;

  std::string line;
  while (std::getline(in, line) && is_comment(line)) {
  }
  std::istringstream dims(line);
  unsigned long long rows, cols, nnz;
  if (!(dims >> rows >> cols >> nnz)) return malformed(path, "bad size line");
  if (rows != cols) return malformed(path, "matrix is not square");
  if (!fits_vertex_id(rows)) return vertex_overflow(path, rows);

  std::vector<Edge> edges;
  edges.reserve(nnz);
  while (std::getline(in, line)) {
    if (is_comment(line)) continue;
    std::istringstream ss(line);
    unsigned long long r, c;
    double w = 1.0;
    if (!(ss >> r >> c)) return malformed(path, "bad entry line: " + line);
    if (!pattern) ss >> w;
    if (r == 0 || c == 0 || r > rows || c > cols) {
      return malformed(path, "entry out of range");
    }
    // Graph use: take |value| as weight, ignore numerically-zero entries.
    w = std::abs(w);
    if (w == 0.0) w = 1.0;
    edges.push_back({static_cast<VertexId>(r - 1), static_cast<VertexId>(c - 1), w});
  }
  if (in.bad()) return io_failure(path, "read error");
  // Upper/lower duplicates in general matrices merge in the builder.
  return build_csr(static_cast<VertexId>(rows), std::move(edges));
}

Csr load_matrix_market(const std::string& path) {
  return value_or_throw(try_load_matrix_market(path));
}

StatusOr<Csr> try_load_metis(const std::string& path) {
  std::ifstream in(path);
  if (!in) return cannot_open(path);
  std::string line;
  while (std::getline(in, line) && is_comment(line)) {
  }
  std::istringstream hdr(line);
  unsigned long long n, m, fmt = 0;
  if (!(hdr >> n >> m)) return malformed(path, "bad METIS header");
  if (!fits_vertex_id(n)) return vertex_overflow(path, n);
  hdr >> fmt;
  const bool has_edge_weights = (fmt % 10) == 1;
  const bool has_vertex_weights = (fmt / 10 % 10) == 1;

  std::vector<Edge> edges;
  edges.reserve(2 * m);
  unsigned long long v = 0;
  while (v < n && std::getline(in, line)) {
    if (is_comment(line) && line.find_first_not_of(" \t\r") != std::string::npos &&
        line[line.find_first_not_of(" \t\r")] == '%') {
      continue;  // METIS allows % comment lines between rows
    }
    std::istringstream ss(line);
    if (has_vertex_weights) {
      unsigned long long vw;
      ss >> vw;  // vertex weights are ignored: Louvain weights live on edges
    }
    unsigned long long nb;
    while (ss >> nb) {
      double w = 1.0;
      if (has_edge_weights && !(ss >> w)) return malformed(path, "missing edge weight");
      if (nb == 0 || nb > n) return malformed(path, "neighbor out of range");
      if (nb - 1 >= v) {  // keep each undirected edge once
        edges.push_back({static_cast<VertexId>(v), static_cast<VertexId>(nb - 1), w});
      }
    }
    ++v;
  }
  if (in.bad()) return io_failure(path, "read error");
  if (v != n) return malformed(path, "fewer adjacency rows than header promises");
  return build_csr(static_cast<VertexId>(n), std::move(edges));
}

Csr load_metis(const std::string& path) {
  return value_or_throw(try_load_metis(path));
}

StatusOr<Csr> try_load_auto(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    const std::size_t len = std::strlen(suffix);
    return path.size() >= len && path.compare(path.size() - len, len, suffix) == 0;
  };
  if (ends_with(".mtx")) return try_load_matrix_market(path);
  if (ends_with(".graph") || ends_with(".metis")) return try_load_metis(path);
  if (ends_with(".bin")) return try_load_binary(path);
  return try_load_edge_list(path);
}

Csr load_auto(const std::string& path) {
  return value_or_throw(try_load_auto(path));
}

namespace {
constexpr char kMagic[8] = {'G', 'L', 'O', 'U', 'B', 'I', 'N', '1'};

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}
template <typename T>
void read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
}
/// Length-prefixed section read, bounded by the bytes actually left in
/// the file: a crafted or corrupt length prefix must fail with a
/// status instead of driving a multi-gigabyte allocation (or a silent
/// short read) off a 64-bit count.
template <typename T>
Status read_vec(std::ifstream& in, const std::string& path,
                std::uint64_t file_size, std::vector<T>& v) {
  std::uint64_t size = 0;
  read_pod(in, size);
  if (!in) return malformed(path, "truncated section header");
  const auto pos = static_cast<std::uint64_t>(in.tellg());
  const std::uint64_t remaining = file_size - pos;
  if (size > remaining / sizeof(T)) {
    // A count that could never have fit the file is a malformed
    // header; one that would fit the file but not the remainder looks
    // like a valid save that lost its tail.
    if (size <= file_size / sizeof(T)) {
      return io_failure(path, "truncated file");
    }
    return malformed(path, "section claims " + std::to_string(size) +
                               " entries but only " +
                               std::to_string(remaining) + " bytes remain");
  }
  v.resize(size);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  if (!in) return io_failure(path, "truncated file");
  return Status::ok_status();
}
}  // namespace

Status try_save_binary(const Csr& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return cannot_open(path);
  out.write(kMagic, sizeof kMagic);
  std::vector<EdgeIdx> offsets(graph.offsets().begin(), graph.offsets().end());
  std::vector<VertexId> adj(graph.adjacency().begin(), graph.adjacency().end());
  std::vector<Weight> weights(graph.edge_weights().begin(), graph.edge_weights().end());
  write_vec(out, offsets);
  write_vec(out, adj);
  write_vec(out, weights);
  if (!out) return io_failure(path, "write error");
  return Status::ok_status();
}

void save_binary(const Csr& graph, const std::string& path) {
  ok_or_throw(try_save_binary(graph, path));
}

StatusOr<Csr> try_load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return cannot_open(path);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return malformed(path, "bad magic");
  }
  std::vector<EdgeIdx> offsets;
  std::vector<VertexId> adj;
  std::vector<Weight> weights;
  if (Status s = read_vec(in, path, file_size, offsets); !s.ok()) return s;
  if (Status s = read_vec(in, path, file_size, adj); !s.ok()) return s;
  if (Status s = read_vec(in, path, file_size, weights); !s.ok()) return s;
  if (offsets.empty()) return malformed(path, "empty offsets section");
  if (!fits_vertex_id(offsets.size() - 1)) {
    return vertex_overflow(path, offsets.size() - 1);
  }
  if (adj.size() != offsets.back() || weights.size() != adj.size()) {
    return malformed(path, "section sizes disagree with offsets");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return malformed(path, "offsets are not monotone");
    }
  }
  const auto n = static_cast<VertexId>(offsets.size() - 1);
  for (const VertexId nb : adj) {
    if (nb >= n) return malformed(path, "neighbor id out of range");
  }
  return Csr(std::move(offsets), std::move(adj), std::move(weights));
}

Csr load_binary(const std::string& path) {
  return value_or_throw(try_load_binary(path));
}

Status try_save_edge_list(const Csr& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return cannot_open(path);
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    auto nbrs = graph.neighbors(u);
    auto ws = graph.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= u) {  // each undirected edge once; loops kept
        out << u << ' ' << nbrs[i] << ' ' << ws[i] << '\n';
      }
    }
  }
  if (!out) return io_failure(path, "write error");
  return Status::ok_status();
}

void save_edge_list(const Csr& graph, const std::string& path) {
  ok_or_throw(try_save_edge_list(graph, path));
}

}  // namespace glouvain::graph
