#include "graph/csr.hpp"

#include "simt/thread_pool.hpp"

namespace glouvain::graph {

Csr::Csr(std::vector<EdgeIdx> offsets, std::vector<VertexId> adj,
         std::vector<Weight> weights)
    : offsets_(std::move(offsets)),
      adj_(std::move(adj)),
      weights_(std::move(weights)) {
  const unsigned workers = simt::ThreadPool::global().size();
  std::vector<Weight> partial_w(workers, 0);
  std::vector<EdgeIdx> partial_loops(workers, 0);
  compute_totals(partial_w, partial_loops);
}

Csr::Csr(std::vector<EdgeIdx> offsets, std::vector<VertexId> adj,
         std::vector<Weight> weights, prim::Scratch& scratch)
    : offsets_(std::move(offsets)),
      adj_(std::move(adj)),
      weights_(std::move(weights)) {
  const unsigned workers = simt::ThreadPool::global().size();
  prim::Scratch::Frame frame(scratch);
  auto partial_w = scratch.alloc<Weight>(workers);
  auto partial_loops = scratch.alloc<EdgeIdx>(workers);
  for (unsigned w = 0; w < workers; ++w) {
    partial_w[w] = 0;
    partial_loops[w] = 0;
  }
  compute_totals(partial_w, partial_loops);
}

void Csr::compute_totals(std::span<Weight> partial_w,
                         std::span<EdgeIdx> partial_loops) {
  assert(!offsets_.empty());
  assert(adj_.size() == offsets_.back());
  assert(weights_.size() == adj_.size());

  const VertexId n = num_vertices();
  simt::ThreadPool::global().parallel_for(n, [&](std::size_t v, unsigned worker) {
    Weight s = 0;
    EdgeIdx loops = 0;
    const EdgeIdx b = offsets_[v], e = offsets_[v + 1];
    for (EdgeIdx i = b; i < e; ++i) {
      s += weights_[i];
      if (adj_[i] == static_cast<VertexId>(v)) ++loops;
    }
    partial_w[worker] += s;
    partial_loops[worker] += loops;
  });
  for (std::size_t w = 0; w < partial_w.size(); ++w) {
    total_weight_ += partial_w[w];
    num_loops_ += partial_loops[w];
  }
}

Weight Csr::loop_weight(VertexId v) const noexcept {
  const EdgeIdx b = offsets_[v], e = offsets_[v + 1];
  Weight w = 0;
  for (EdgeIdx i = b; i < e; ++i) {
    if (adj_[i] == v) w += weights_[i];
  }
  return w;
}

std::vector<Weight> Csr::compute_strengths() const {
  const VertexId n = num_vertices();
  std::vector<Weight> strengths(n);
  simt::ThreadPool::global().parallel_for(n, [&](std::size_t v, unsigned) {
    strengths[v] = strength(static_cast<VertexId>(v));
  });
  return strengths;
}

}  // namespace glouvain::graph
