// Content identity of a graph: a 128-bit hash over the raw CSR arrays
// (offsets, adjacency, edge weights). Two structurally identical graphs
// — same vertex numbering, same neighbor order, same weights — produce
// the same fingerprint. This lives in the graph layer (below every
// backend) so both the service result cache (svc::fingerprint, which
// delegates here) and the shard partition-plan cache can key on graph
// content without a dependency on each other.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace glouvain::graph {

struct Fingerprint128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint128&,
                         const Fingerprint128&) = default;
};

/// Hash the CSR arrays. O(n + m); single pass, no allocation. Two
/// independent mixing lanes (distinct odd multipliers, splitmix64
/// finalizer) so a single 64-bit collision does not collide the pair.
Fingerprint128 fingerprint128(const Csr& graph);

}  // namespace glouvain::graph
