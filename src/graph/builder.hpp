// Assembles a canonical Csr from an arbitrary edge list: symmetrizes,
// merges parallel edges (summing weights), canonicalizes self-loops to
// single entries, and sorts every row by neighbor id. All generators
// and file loaders funnel through here so every graph in the system
// satisfies the Csr invariants.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace glouvain::graph {

struct BuildOptions {
  /// Add the reverse of every non-loop edge (input gives each
  /// undirected edge once). When false the input must already contain
  /// both directions.
  bool symmetrize = true;
  /// Merge duplicate (u,v) entries by summing their weights.
  bool combine_duplicates = true;
  /// Drop self-loops entirely (some datasets carry junk loops).
  bool drop_loops = false;
};

/// Build a Csr over vertices [0, num_vertices). Edges referencing
/// vertices outside that range throw std::out_of_range.
Csr build_csr(VertexId num_vertices, std::vector<Edge> edges,
              const BuildOptions& options = {});

/// Convenience: num_vertices inferred as 1 + max endpoint.
Csr build_csr(std::vector<Edge> edges, const BuildOptions& options = {});

}  // namespace glouvain::graph
