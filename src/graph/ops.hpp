// Whole-graph operations: validation, statistics, permutation, and the
// *reference* (host-side) community contraction that the GPU-style
// aggregation kernel is tested against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace glouvain::graph {

/// Structural invariants: monotone offsets, in-range neighbors,
/// positive weights, symmetric adjacency (w(u,v) == w(v,u)), loops
/// stored once. Returns an empty string when valid, else a diagnostic.
std::string validate(const Csr& graph);

struct DegreeStats {
  EdgeIdx min_degree = 0;
  EdgeIdx max_degree = 0;
  double mean_degree = 0;
  /// Degree histogram over the paper's 7 modularity-optimization
  /// buckets: (0,4], (4,8], (8,16], (16,32], (32,84], (84,319], >319.
  std::vector<std::uint64_t> bucket_counts;
};

DegreeStats degree_stats(const Csr& graph);

/// Relabel: vertex v becomes perm[v]; perm must be a bijection.
Csr permute(const Csr& graph, const std::vector<VertexId>& perm);

/// Sequential reference contraction: community[v] in [0, k) for every
/// vertex; returns the aggregated graph with one vertex per non-empty
/// community (renumbered consecutively in increasing community order)
/// plus the community -> new-vertex map in *new_id (optional).
/// Intra-community edges fold into a self-loop carrying
/// 2 * (internal undirected weight) + (original loop weights), matching
/// the Csr weight conventions so modularity is preserved exactly.
Csr contract_reference(const Csr& graph, const std::vector<Community>& community,
                       std::vector<VertexId>* new_id = nullptr);

/// Number of connected components (BFS; ignores weights).
std::uint64_t count_components(const Csr& graph);

/// Subgraph induced by `members` (must be duplicate-free). Vertex
/// members[i] becomes vertex i of the subgraph; edges with an endpoint
/// outside `members` are dropped. Used by the coarse-grained
/// multi-device driver to give each device its partition.
Csr induced_subgraph(const Csr& graph, std::span<const VertexId> members);

}  // namespace glouvain::graph
