// Graph file formats. Three text formats cover the collections the
// paper draws from (Florida: MatrixMarket; SNAP: edge lists; DIMACS/
// METIS meshes), plus a fast binary snapshot for benchmark re-runs.
//
// Each operation comes in two flavours: a `try_*` variant returning
// util::Status / util::StatusOr (missing file -> kNotFound, malformed
// content -> kInvalidArgument, mid-stream read/write failure ->
// kIoError; the CLI maps these to distinct exit codes), and the
// original throwing wrapper (std::runtime_error with the same message)
// for callers that prefer exceptions.
#pragma once

#include <string>

#include "graph/csr.hpp"
#include "util/status.hpp"

namespace glouvain::graph {

/// Whitespace-separated `u v [w]` lines; `#` and `%` comment lines are
/// skipped. Vertices may be sparse ids; they are NOT compacted — ids
/// are used verbatim, so n = max id + 1. Each undirected edge should
/// appear once; duplicates merge.
[[nodiscard]] util::StatusOr<Csr> try_load_edge_list(const std::string& path);
Csr load_edge_list(const std::string& path);

/// MatrixMarket `%%MatrixMarket matrix coordinate (real|pattern|integer)
/// (general|symmetric)` files, 1-indexed. Symmetric files give the
/// lower triangle once; general files are symmetrized by merge.
[[nodiscard]] util::StatusOr<Csr> try_load_matrix_market(const std::string& path);
Csr load_matrix_market(const std::string& path);

/// METIS .graph: header `n m [fmt]`, then one line of neighbors per
/// vertex (1-indexed), weights if fmt says so.
[[nodiscard]] util::StatusOr<Csr> try_load_metis(const std::string& path);
Csr load_metis(const std::string& path);

/// Dispatch on extension: .mtx → MatrixMarket, .graph/.metis → METIS,
/// .bin → binary, anything else → edge list.
[[nodiscard]] util::StatusOr<Csr> try_load_auto(const std::string& path);
Csr load_auto(const std::string& path);

/// Compact binary snapshot (magic + sizes + raw arrays, little-endian).
[[nodiscard]] util::Status try_save_binary(const Csr& graph, const std::string& path);
void save_binary(const Csr& graph, const std::string& path);
[[nodiscard]] util::StatusOr<Csr> try_load_binary(const std::string& path);
Csr load_binary(const std::string& path);

/// Write as a plain `u v w` edge list (each undirected edge once).
[[nodiscard]] util::Status try_save_edge_list(const Csr& graph, const std::string& path);
void save_edge_list(const Csr& graph, const std::string& path);

}  // namespace glouvain::graph
