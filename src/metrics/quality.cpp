#include "metrics/quality.hpp"

#include <algorithm>

#include "simt/thread_pool.hpp"

namespace glouvain::metrics {

namespace {
using graph::Community;
using graph::Csr;
using graph::VertexId;
using graph::Weight;
}  // namespace

double coverage(const Csr& graph, std::span<const Community> community) {
  const Weight m2 = graph.total_weight();
  if (m2 <= 0) return 1.0;
  auto& pool = simt::ThreadPool::global();
  std::vector<Weight> internal(pool.size(), 0);
  pool.parallel_for(graph.num_vertices(), [&](std::size_t vi, unsigned worker) {
    const auto v = static_cast<VertexId>(vi);
    auto nbrs = graph.neighbors(v);
    auto ws = graph.weights(v);
    Weight acc = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (community[nbrs[i]] == community[v]) acc += ws[i];
    }
    internal[worker] += acc;
  });
  Weight total = 0;
  for (auto w : internal) total += w;
  return total / m2;
}

namespace {

/// cut and volume per community in one pass.
void cut_and_volume(const Csr& graph, std::span<const Community> community,
                    std::vector<Weight>& cut, std::vector<Weight>& volume) {
  Community max_label = 0;
  for (auto c : community) max_label = std::max(max_label, c);
  cut.assign(static_cast<std::size_t>(max_label) + 1, 0);
  volume.assign(static_cast<std::size_t>(max_label) + 1, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const Community c = community[v];
    auto nbrs = graph.neighbors(v);
    auto ws = graph.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      volume[c] += ws[i];
      if (community[nbrs[i]] != c) cut[c] += ws[i];
    }
  }
}

double conductance_from(Weight cut, Weight volume, Weight m2) {
  const Weight denom = std::min(volume, m2 - volume);
  if (denom <= 0) return 0;
  return cut / denom;
}

}  // namespace

double conductance(const Csr& graph, std::span<const Community> community,
                   Community c) {
  std::vector<Weight> cut, volume;
  cut_and_volume(graph, community, cut, volume);
  if (c >= cut.size()) return 0;
  return conductance_from(cut[c], volume[c], graph.total_weight());
}

ConductanceReport conductance_all(const Csr& graph,
                                  std::span<const Community> community) {
  ConductanceReport report;
  std::vector<Weight> cut, volume;
  cut_and_volume(graph, community, cut, volume);
  report.per_community.resize(cut.size());
  const Weight m2 = graph.total_weight();
  Weight weighted = 0, total_volume = 0;
  for (std::size_t c = 0; c < cut.size(); ++c) {
    report.per_community[c] = conductance_from(cut[c], volume[c], m2);
    weighted += report.per_community[c] * volume[c];
    total_volume += volume[c];
  }
  report.weighted_mean = total_volume > 0 ? weighted / total_volume : 0;
  return report;
}

}  // namespace glouvain::metrics
