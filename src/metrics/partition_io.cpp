#include "metrics/partition_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace glouvain::metrics {

namespace {
bool is_comment(const std::string& line) {
  for (char ch : line) {
    if (std::isspace(static_cast<unsigned char>(ch))) continue;
    return ch == '#' || ch == '%';
  }
  return true;
}
}  // namespace

std::vector<graph::Community> load_partition(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_partition: cannot open " + path);
  std::vector<graph::Community> community;
  std::string line;
  while (std::getline(in, line)) {
    if (is_comment(line)) continue;
    std::istringstream ss(line);
    unsigned long long v, c;
    if (!(ss >> v >> c)) {
      throw std::runtime_error("load_partition: bad line: " + line);
    }
    if (v >= community.size()) {
      community.resize(v + 1, graph::kInvalidCommunity);
    }
    community[v] = static_cast<graph::Community>(c);
  }
  return community;
}

void save_partition(const std::vector<graph::Community>& community,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_partition: cannot open " + path);
  for (std::size_t v = 0; v < community.size(); ++v) {
    out << v << ' ' << community[v] << '\n';
  }
  if (!out) throw std::runtime_error("save_partition: write error");
}

}  // namespace glouvain::metrics
