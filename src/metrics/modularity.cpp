#include "metrics/modularity.hpp"

#include "simt/thread_pool.hpp"

namespace glouvain::metrics {

std::vector<graph::Weight> community_totals(
    const graph::Csr& graph, std::span<const graph::Community> community) {
  const graph::VertexId n = graph.num_vertices();
  std::vector<graph::Weight> tot(n, 0);
  // Sequential accumulate per worker then merge would need n-sized
  // buffers per worker; a simple serial loop is O(n) and cheap next to
  // the O(|E|) modularity pass.
  for (graph::VertexId v = 0; v < n; ++v) {
    tot[community[v]] += graph.strength(v);
  }
  return tot;
}

double modularity(const graph::Csr& graph,
                  std::span<const graph::Community> community) {
  const graph::VertexId n = graph.num_vertices();
  const graph::Weight m2 = graph.total_weight();
  if (m2 <= 0) return 0;

  auto& pool = simt::ThreadPool::global();
  std::vector<graph::Weight> in_partial(pool.size(), 0);
  pool.parallel_for(n, [&](std::size_t vi, unsigned worker) {
    const auto v = static_cast<graph::VertexId>(vi);
    const graph::Community c = community[v];
    auto nbrs = graph.neighbors(v);
    auto ws = graph.weights(v);
    graph::Weight internal = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (community[nbrs[i]] == c) internal += ws[i];
    }
    in_partial[worker] += internal;
  });
  graph::Weight in_total = 0;
  for (auto p : in_partial) in_total += p;

  const std::vector<graph::Weight> tot = community_totals(graph, community);
  graph::Weight tot_sq = 0;
  for (auto t : tot) tot_sq += t * t;

  return in_total / m2 - tot_sq / (m2 * m2);
}

double move_gain(const graph::Csr& graph,
                 std::span<const graph::Community> community,
                 std::span<const graph::Weight> community_total,
                 std::span<const graph::Weight> strengths,
                 graph::VertexId v, graph::Community target) {
  const graph::Community current = community[v];
  if (target == current) return 0;
  const graph::Weight m2 = graph.total_weight();
  const graph::Weight k = strengths[v];

  graph::Weight d_cur = 0;  // weight from v to C(v) \ {v}
  graph::Weight d_tgt = 0;  // weight from v to target
  auto nbrs = graph.neighbors(v);
  auto ws = graph.weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == v) continue;  // self-loop travels with v
    const graph::Community c = community[nbrs[i]];
    if (c == current) d_cur += ws[i];
    else if (c == target) d_tgt += ws[i];
  }
  const graph::Weight tot_cur = community_total[current] - k;  // without v
  const graph::Weight tot_tgt = community_total[target];
  return 2.0 * (d_tgt - d_cur) / m2 -
         2.0 * k * (tot_tgt - tot_cur) / (m2 * m2);
}

}  // namespace glouvain::metrics
