// Partition quality measures beyond modularity: coverage and
// conductance. Modularity is what Louvain optimizes (Eq. 1); these are
// the standard independent checks used when comparing detectors, and
// they guard quality tests against modularity's known blind spots
// (resolution limit — Fortunato & Barthélemy 2007, cited as [11]).
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace glouvain::metrics {

/// Fraction of edge weight that is intra-community: in [0, 1], 1 when
/// every edge is internal. (Trivially 1 for the all-in-one partition —
/// always read together with modularity.)
double coverage(const graph::Csr& graph,
                std::span<const graph::Community> community);

/// Conductance of one community c: cut(c) / min(vol(c), vol(V\c)),
/// where vol sums strengths. Lower is better; 0 = disconnected from
/// the rest. Returns 0 for communities with empty complement or volume.
double conductance(const graph::Csr& graph,
                   std::span<const graph::Community> community,
                   graph::Community c);

/// Per-community conductance (index = dense community label) plus the
/// size-weighted mean — a scalar "how crisp are these communities".
struct ConductanceReport {
  std::vector<double> per_community;
  double weighted_mean = 0;
};
ConductanceReport conductance_all(const graph::Csr& graph,
                                  std::span<const graph::Community> community);

}  // namespace glouvain::metrics
