#include "metrics/dendrogram.hpp"

#include <algorithm>
#include <stdexcept>

#include "metrics/partition.hpp"

namespace glouvain::metrics {

void Dendrogram::push_level(std::vector<graph::Community> mapping) {
  if (!levels_.empty()) {
    // Domain of the new level = range of the previous one.
    const graph::Community prev_range = communities_at_level(levels_.size() - 1);
    if (mapping.size() != prev_range) {
      throw std::invalid_argument(
          "Dendrogram::push_level: level domain does not match previous range");
    }
  }
  levels_.push_back(std::move(mapping));
}

std::vector<graph::Community> Dendrogram::community_at_level(std::size_t l) const {
  if (l >= levels_.size()) {
    throw std::out_of_range("Dendrogram::community_at_level");
  }
  std::vector<graph::Community> result = levels_[0];
  for (std::size_t i = 1; i <= l; ++i) {
    result = flatten(result, levels_[i]);
  }
  return result;
}

graph::Community Dendrogram::communities_at_level(std::size_t l) const {
  const auto& level = levels_.at(l);
  graph::Community max_label = 0;
  for (const auto c : level) max_label = std::max(max_label, c);
  return level.empty() ? 0 : max_label + 1;
}

}  // namespace glouvain::metrics
