// Modularity (Newman & Girvan) and the single-move gain of Eq. (2) —
// the reference implementations every optimizer is tested against.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace glouvain::metrics {

/// Q = sum_c [ in_c / 2m - (tot_c / 2m)^2 ] under the Csr weight
/// conventions (see graph/csr.hpp): in_c counts ordered internal pairs
/// plus self-loops once, tot_c sums member strengths, 2m =
/// graph.total_weight(). Computed in parallel; O(|E|).
double modularity(const graph::Csr& graph,
                  std::span<const graph::Community> community);

/// Exact modularity change of moving vertex v from its current
/// community to `target` (computed from scratch; O(deg v) given the
/// precomputed community totals). Used by property tests to verify
/// that optimizers only ever make non-negative moves.
double move_gain(const graph::Csr& graph,
                 std::span<const graph::Community> community,
                 std::span<const graph::Weight> community_total,
                 std::span<const graph::Weight> strengths,
                 graph::VertexId v, graph::Community target);

/// tot_c for every community: tot[c] = sum of strengths of members.
std::vector<graph::Weight> community_totals(
    const graph::Csr& graph, std::span<const graph::Community> community);

}  // namespace glouvain::metrics
