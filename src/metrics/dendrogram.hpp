// Multi-level clustering hierarchy (the "dendrogram" of the Louvain
// method): one dense mapping per level, composable down to the original
// vertex set. The paper's GPU code drops intermediate levels for memory
// ("the program only outputs the final modularity"); keeping them is
// cheap on the host and is what downstream users of a hierarchy (zoom
// levels, coarse-to-fine layouts) actually need.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace glouvain::metrics {

class Dendrogram {
 public:
  /// Append one level: mapping[i] is the community (dense label) of
  /// level-(l-1) vertex i — of an ORIGINAL vertex for the first level.
  void push_level(std::vector<graph::Community> mapping);

  std::size_t num_levels() const noexcept { return levels_.size(); }
  bool empty() const noexcept { return levels_.empty(); }

  /// The raw mapping of one level.
  std::span<const graph::Community> level(std::size_t l) const {
    return levels_.at(l);
  }

  /// Communities at level l (inclusive), one label per ORIGINAL vertex.
  /// Level num_levels()-1 is the final clustering.
  std::vector<graph::Community> community_at_level(std::size_t l) const;

  /// Number of communities at a level.
  graph::Community communities_at_level(std::size_t l) const;

  /// Number of original vertices (size of level 0's domain).
  std::size_t num_vertices() const noexcept {
    return levels_.empty() ? 0 : levels_.front().size();
  }

 private:
  std::vector<std::vector<graph::Community>> levels_;
};

}  // namespace glouvain::metrics
