// Partition-agreement metrics against ground truth: Normalized Mutual
// Information and Adjusted Rand Index. Used by quality tests on the
// planted-partition and LFR generators.
#pragma once

#include <span>

#include "graph/types.hpp"

namespace glouvain::metrics {

/// NMI with arithmetic-mean normalization: I(A;B)/((H(A)+H(B))/2).
/// 1.0 = identical partitions, ~0 = independent. Returns 1.0 when both
/// partitions are the all-singletons or all-one-block trivial pair with
/// zero entropy.
double nmi(std::span<const graph::Community> a,
           std::span<const graph::Community> b);

/// Adjusted Rand Index (chance-corrected pair-counting agreement);
/// 1.0 = identical, ~0 = random.
double adjusted_rand_index(std::span<const graph::Community> a,
                           std::span<const graph::Community> b);

}  // namespace glouvain::metrics
