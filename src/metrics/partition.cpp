#include "metrics/partition.hpp"

#include <algorithm>

namespace glouvain::metrics {

graph::Community renumber(std::vector<graph::Community>& community) {
  if (community.empty()) return 0;
  const graph::Community max_label =
      *std::max_element(community.begin(), community.end());
  std::vector<graph::Community> map(static_cast<std::size_t>(max_label) + 1,
                                    graph::kInvalidCommunity);
  graph::Community next = 0;
  // First pass in increasing-label order keeps renumbering stable with
  // respect to label order (matching the newID prefix-sum of Alg. 3).
  std::vector<std::uint8_t> present(static_cast<std::size_t>(max_label) + 1, 0);
  for (auto c : community) present[c] = 1;
  for (std::size_t c = 0; c <= max_label; ++c) {
    if (present[c]) map[c] = next++;
  }
  for (auto& c : community) c = map[c];
  return next;
}

PartitionStats partition_stats(std::span<const graph::Community> community) {
  PartitionStats stats;
  if (community.empty()) return stats;
  const auto sizes = community_sizes(community);
  stats.num_communities = sizes.size();
  stats.smallest = ~std::uint64_t{0};
  std::uint64_t total = 0;
  for (auto s : sizes) {
    stats.largest = std::max(stats.largest, s);
    stats.smallest = std::min(stats.smallest, s);
    if (s == 1) ++stats.singletons;
    total += s;
  }
  stats.mean_size = static_cast<double>(total) / static_cast<double>(sizes.size());
  return stats;
}

std::vector<graph::Community> flatten(std::span<const graph::Community> lower,
                                      std::span<const graph::Community> upper) {
  std::vector<graph::Community> out(lower.size());
  for (std::size_t v = 0; v < lower.size(); ++v) out[v] = upper[lower[v]];
  return out;
}

std::vector<std::uint64_t> community_sizes(
    std::span<const graph::Community> community) {
  graph::Community max_label = 0;
  for (auto c : community) max_label = std::max(max_label, c);
  std::vector<std::uint64_t> sizes(community.empty() ? 0 : max_label + 1, 0);
  for (auto c : community) ++sizes[c];
  return sizes;
}

}  // namespace glouvain::metrics
