#include "metrics/compare.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace glouvain::metrics {

namespace {

struct Contingency {
  // joint[{i,j}] = #vertices with label i in A and j in B.
  std::unordered_map<std::uint64_t, std::uint64_t> joint;
  std::vector<std::uint64_t> row;  // per-label counts in A
  std::vector<std::uint64_t> col;  // per-label counts in B
  std::uint64_t n = 0;
};

Contingency contingency(std::span<const graph::Community> a,
                        std::span<const graph::Community> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("partition size mismatch");
  }
  Contingency t;
  t.n = a.size();
  graph::Community max_a = 0, max_b = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_a = std::max(max_a, a[i]);
    max_b = std::max(max_b, b[i]);
  }
  t.row.assign(static_cast<std::size_t>(max_a) + 1, 0);
  t.col.assign(static_cast<std::size_t>(max_b) + 1, 0);
  t.joint.reserve(a.size() / 4 + 16);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++t.row[a[i]];
    ++t.col[b[i]];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(a[i]) << 32) | b[i];
    ++t.joint[key];
  }
  return t;
}

}  // namespace

double nmi(std::span<const graph::Community> a,
           std::span<const graph::Community> b) {
  const Contingency t = contingency(a, b);
  if (t.n == 0) return 1.0;
  const double n = static_cast<double>(t.n);

  auto entropy = [n](const std::vector<std::uint64_t>& counts) {
    double h = 0;
    for (auto c : counts) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) / n;
      h -= p * std::log(p);
    }
    return h;
  };
  const double ha = entropy(t.row);
  const double hb = entropy(t.col);
  if (ha == 0 && hb == 0) return 1.0;  // both trivial and equal

  double mi = 0;
  for (const auto& [key, nij] : t.joint) {
    const auto i = static_cast<std::size_t>(key >> 32);
    const auto j = static_cast<std::size_t>(key & 0xffffffffULL);
    const double pij = static_cast<double>(nij) / n;
    const double pi = static_cast<double>(t.row[i]) / n;
    const double pj = static_cast<double>(t.col[j]) / n;
    mi += pij * std::log(pij / (pi * pj));
  }
  return mi / ((ha + hb) / 2.0);
}

double adjusted_rand_index(std::span<const graph::Community> a,
                           std::span<const graph::Community> b) {
  const Contingency t = contingency(a, b);
  if (t.n < 2) return 1.0;
  auto choose2 = [](std::uint64_t x) {
    return static_cast<double>(x) * (static_cast<double>(x) - 1.0) / 2.0;
  };
  double sum_ij = 0, sum_i = 0, sum_j = 0;
  for (const auto& [key, nij] : t.joint) {
    (void)key;
    sum_ij += choose2(nij);
  }
  for (auto r : t.row) sum_i += choose2(r);
  for (auto c : t.col) sum_j += choose2(c);
  const double total = choose2(t.n);
  const double expected = sum_i * sum_j / total;
  const double max_index = (sum_i + sum_j) / 2.0;
  if (max_index == expected) return 1.0;  // both trivial
  return (sum_ij - expected) / (max_index - expected);
}

}  // namespace glouvain::metrics
