// Partition bookkeeping: renumbering, size statistics, flattening of
// multi-level dendrograms to the original vertex set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace glouvain::metrics {

/// Relabel community ids to a dense [0, k) range (order of first
/// appearance by increasing old label); returns k.
graph::Community renumber(std::vector<graph::Community>& community);

struct PartitionStats {
  std::uint64_t num_communities = 0;
  std::uint64_t largest = 0;
  std::uint64_t smallest = 0;
  std::uint64_t singletons = 0;
  double mean_size = 0;
};

PartitionStats partition_stats(std::span<const graph::Community> community);

/// Compose two levels of a dendrogram: vertex v of the original graph
/// ends up in upper[lower[v]]. Both inputs must be renumbered densely.
std::vector<graph::Community> flatten(std::span<const graph::Community> lower,
                                      std::span<const graph::Community> upper);

/// Community size histogram: sizes[c] = #members.
std::vector<std::uint64_t> community_sizes(
    std::span<const graph::Community> community);

}  // namespace glouvain::metrics
