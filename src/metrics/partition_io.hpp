// Reading/writing community assignments: the `<vertex> <community>`
// text format used by SNAP ground-truth files and by the glouvain CLI,
// so detected partitions round-trip and external partitions can be
// scored against ours.
#pragma once

#include <string>
#include <vector>

#include "graph/types.hpp"

namespace glouvain::metrics {

/// One "<vertex> <community>" pair per line; `#`/`%` comments ignored.
/// Vertices may appear in any order; missing vertices (holes below the
/// max id) get community kInvalidCommunity, so callers can detect
/// partial files.
std::vector<graph::Community> load_partition(const std::string& path);

void save_partition(const std::vector<graph::Community>& community,
                    const std::string& path);

}  // namespace glouvain::metrics
