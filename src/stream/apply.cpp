#include "stream/apply.hpp"

#include <algorithm>

#include "prim/scan.hpp"
#include "prim/sort.hpp"

namespace glouvain::stream {

namespace {

using graph::Csr;
using graph::Edge;
using graph::EdgeIdx;
using graph::VertexId;
using graph::Weight;

/// One directed half of a delta entry, owned by the row it lands in.
/// Deletions sort before insertions of the same (owner, nbr) so a
/// "delete then re-insert" batch replaces the edge's weight.
struct DeltaArc {
  VertexId owner = 0;
  VertexId nbr = 0;
  Weight w = 0;
  bool del = false;
};

bool arc_less(const DeltaArc& a, const DeltaArc& b) noexcept {
  if (a.owner != b.owner) return a.owner < b.owner;
  if (a.nbr != b.nbr) return a.nbr < b.nbr;
  return a.del && !b.del;
}

/// Merge one old row with its sorted delta arcs. Emit(nbr, weight) is
/// called in increasing nbr order; Stat(nbr, was_present, has_del,
/// ins_w) is called once per distinct delta nbr for the applied-count
/// bookkeeping. Either may be a no-op lambda.
template <typename EmitFn, typename StatFn>
void merge_row(std::span<const VertexId> old_nbrs, std::span<const Weight> old_ws,
               std::span<const DeltaArc> arcs, EmitFn&& emit, StatFn&& stat) {
  std::size_t i = 0;  // old row cursor
  std::size_t j = 0;  // delta cursor
  while (i < old_nbrs.size() || j < arcs.size()) {
    if (j == arcs.size() ||
        (i < old_nbrs.size() && old_nbrs[i] < arcs[j].nbr)) {
      emit(old_nbrs[i], old_ws[i]);
      ++i;
      continue;
    }
    // A delta group for one neighbour: deletions first, then inserts.
    const VertexId nbr = arcs[j].nbr;
    bool has_del = false;
    Weight ins_w = 0;
    for (; j < arcs.size() && arcs[j].nbr == nbr; ++j) {
      if (arcs[j].del) {
        has_del = true;
      } else {
        ins_w += arcs[j].w;
      }
    }
    const bool was_present = i < old_nbrs.size() && old_nbrs[i] == nbr;
    Weight base = 0;
    if (was_present) {
      if (!has_del) base = old_ws[i];
      ++i;
    }
    stat(nbr, was_present, has_del, ins_w);
    if ((was_present && !has_del) || ins_w > 0) emit(nbr, base + ins_w);
  }
}

}  // namespace

ApplyResult apply_delta(const Csr& graph, const Delta& delta,
                        simt::ThreadPool& pool) {
  const VertexId old_n = graph.num_vertices();

  // Insertions may name vertices beyond the current count: grow.
  VertexId new_n = old_n;
  for (const Edge& e : delta.insertions) {
    if (e.w <= 0) continue;
    new_n = std::max({new_n, static_cast<VertexId>(e.u + 1),
                      static_cast<VertexId>(e.v + 1)});
  }

  // Expand each entry into its directed halves (loops once, matching
  // the Csr storage convention). Deletions touching a vertex that does
  // not exist yet cannot match an edge and are dropped here.
  std::vector<DeltaArc> arcs;
  arcs.reserve(2 * delta.size());
  for (const Edge& e : delta.deletions) {
    if (e.u >= old_n || e.v >= old_n) continue;
    arcs.push_back({e.u, e.v, 0, true});
    if (e.u != e.v) arcs.push_back({e.v, e.u, 0, true});
  }
  for (const Edge& e : delta.insertions) {
    if (e.w <= 0) continue;
    arcs.push_back({e.u, e.v, e.w, false});
    if (e.u != e.v) arcs.push_back({e.v, e.u, e.w, false});
  }
  prim::sort(std::span<DeltaArc>(arcs), arc_less, pool);

  // Touched owners (sorted unique) and each owner's arc range.
  ApplyResult result;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t a = 0; a < arcs.size();) {
    std::size_t b = a;
    while (b < arcs.size() && arcs[b].owner == arcs[a].owner) ++b;
    result.touched.push_back(arcs[a].owner);
    ranges.emplace_back(a, b);
    a = b;
  }

  // Pass A: merged degree of every touched row, plus the applied-entry
  // counts (taken on the owner <= nbr half so undirected edges count
  // once).
  std::vector<EdgeIdx> new_degree(new_n, 0);
  pool.parallel_for(old_n, [&](std::size_t v, unsigned) {
    new_degree[v] = graph.degree(static_cast<VertexId>(v));
  });
  std::vector<std::size_t> ins_partial(pool.size(), 0);
  std::vector<std::size_t> del_partial(pool.size(), 0);
  pool.parallel_for(result.touched.size(), [&](std::size_t t, unsigned worker) {
    const VertexId v = result.touched[t];
    const auto [a, b] = ranges[t];
    const bool existing = v < old_n;
    EdgeIdx count = 0;
    merge_row(existing ? graph.neighbors(v) : std::span<const VertexId>{},
              existing ? graph.weights(v) : std::span<const Weight>{},
              std::span<const DeltaArc>(arcs.data() + a, b - a),
              [&](VertexId, Weight) { ++count; },
              [&](VertexId nbr, bool was_present, bool has_del, Weight ins_w) {
                if (v > nbr) return;  // count undirected edges once
                if (has_del && was_present) ++del_partial[worker];
                if (ins_w > 0) ++ins_partial[worker];
              });
    new_degree[v] = count;
  });
  for (unsigned w = 0; w < pool.size(); ++w) {
    result.inserted += ins_partial[w];
    result.deleted += del_partial[w];
  }

  // New offsets (Thrust-style scan), then the row copy/merge pass.
  std::vector<EdgeIdx> offsets(static_cast<std::size_t>(new_n) + 1, 0);
  offsets[new_n] = prim::exclusive_scan(
      std::span<const EdgeIdx>(new_degree),
      std::span<EdgeIdx>(offsets.data(), new_n), pool);

  std::vector<std::uint32_t> touch_slot(new_n, ~0u);
  for (std::size_t t = 0; t < result.touched.size(); ++t) {
    touch_slot[result.touched[t]] = static_cast<std::uint32_t>(t);
  }

  std::vector<VertexId> adj(offsets[new_n]);
  std::vector<Weight> weights(offsets[new_n]);
  pool.parallel_for(new_n, [&](std::size_t vi, unsigned) {
    const auto v = static_cast<VertexId>(vi);
    EdgeIdx out = offsets[vi];
    const std::uint32_t slot = touch_slot[vi];
    if (slot == ~0u) {
      if (v >= old_n) return;  // new isolated vertex (none in practice)
      const auto nbrs = graph.neighbors(v);
      const auto ws = graph.weights(v);
      std::copy(nbrs.begin(), nbrs.end(), adj.begin() + static_cast<std::ptrdiff_t>(out));
      std::copy(ws.begin(), ws.end(), weights.begin() + static_cast<std::ptrdiff_t>(out));
      return;
    }
    const auto [a, b] = ranges[slot];
    const bool existing = v < old_n;
    merge_row(existing ? graph.neighbors(v) : std::span<const VertexId>{},
              existing ? graph.weights(v) : std::span<const Weight>{},
              std::span<const DeltaArc>(arcs.data() + a, b - a),
              [&](VertexId nbr, Weight w) {
                adj[out] = nbr;
                weights[out] = w;
                ++out;
              },
              [](VertexId, bool, bool, Weight) {});
  });

  result.graph = Csr(std::move(offsets), std::move(adj), std::move(weights));
  return result;
}

}  // namespace glouvain::stream
