#include "stream/apply.hpp"

#include <algorithm>

#include "prim/scan.hpp"
#include "prim/sort.hpp"

namespace glouvain::stream {

namespace {

using graph::Csr;
using graph::Edge;
using graph::EdgeIdx;
using graph::VertexId;
using graph::Weight;

/// One directed half of a delta entry, owned by the row it lands in.
/// Deletions sort before insertions of the same (owner, nbr) so a
/// "delete then re-insert" batch replaces the edge's weight.
struct DeltaArc {
  VertexId owner = 0;
  VertexId nbr = 0;
  Weight w = 0;
  bool del = false;
};

bool arc_less(const DeltaArc& a, const DeltaArc& b) noexcept {
  if (a.owner != b.owner) return a.owner < b.owner;
  if (a.nbr != b.nbr) return a.nbr < b.nbr;
  return a.del && !b.del;
}

/// Merge one old row with its sorted delta arcs. Emit(nbr, weight) is
/// called in increasing nbr order; Stat(nbr, was_present, has_del,
/// ins_w) is called once per distinct delta nbr for the applied-count
/// bookkeeping. Either may be a no-op lambda.
template <typename EmitFn, typename StatFn>
void merge_row(std::span<const VertexId> old_nbrs, std::span<const Weight> old_ws,
               std::span<const DeltaArc> arcs, EmitFn&& emit, StatFn&& stat) {
  std::size_t i = 0;  // old row cursor
  std::size_t j = 0;  // delta cursor
  while (i < old_nbrs.size() || j < arcs.size()) {
    if (j == arcs.size() ||
        (i < old_nbrs.size() && old_nbrs[i] < arcs[j].nbr)) {
      emit(old_nbrs[i], old_ws[i]);
      ++i;
      continue;
    }
    // A delta group for one neighbour: deletions first, then inserts.
    const VertexId nbr = arcs[j].nbr;
    bool has_del = false;
    Weight ins_w = 0;
    for (; j < arcs.size() && arcs[j].nbr == nbr; ++j) {
      if (arcs[j].del) {
        has_del = true;
      } else {
        ins_w += arcs[j].w;
      }
    }
    const bool was_present = i < old_nbrs.size() && old_nbrs[i] == nbr;
    Weight base = 0;
    if (was_present) {
      if (!has_del) base = old_ws[i];
      ++i;
    }
    stat(nbr, was_present, has_del, ins_w);
    if ((was_present && !has_del) || ins_w > 0) emit(nbr, base + ins_w);
  }
}

}  // namespace

ApplyResult apply_delta(const Csr& graph, const Delta& delta,
                        simt::ThreadPool& pool) {
  core::Workspace ws;
  return apply_delta(graph, delta, ws, pool);
}

ApplyResult apply_delta(const Csr& graph, const Delta& delta,
                        core::Workspace& ws, simt::ThreadPool& pool) {
  using Slot = core::Workspace::Slot;
  const VertexId old_n = graph.num_vertices();

  // Insertions may name vertices beyond the current count: grow.
  VertexId new_n = old_n;
  for (const Edge& e : delta.insertions) {
    if (e.w <= 0) continue;
    new_n = std::max({new_n, static_cast<VertexId>(e.u + 1),
                      static_cast<VertexId>(e.v + 1)});
  }

  // Expand each entry into its directed halves (loops once, matching
  // the Csr storage convention). Deletions touching a vertex that does
  // not exist yet cannot match an edge and are dropped here. The arc
  // buffer is a workspace slot, so count first, then fill.
  std::size_t num_arcs = 0;
  for (const Edge& e : delta.deletions) {
    if (e.u >= old_n || e.v >= old_n) continue;
    num_arcs += e.u != e.v ? 2 : 1;
  }
  for (const Edge& e : delta.insertions) {
    if (e.w <= 0) continue;
    num_arcs += e.u != e.v ? 2 : 1;
  }
  auto arcs = ws.buffer<DeltaArc>(Slot::kStreamArcs, num_arcs);
  std::size_t fill = 0;
  for (const Edge& e : delta.deletions) {
    if (e.u >= old_n || e.v >= old_n) continue;
    arcs[fill++] = {e.u, e.v, 0, true};
    if (e.u != e.v) arcs[fill++] = {e.v, e.u, 0, true};
  }
  for (const Edge& e : delta.insertions) {
    if (e.w <= 0) continue;
    arcs[fill++] = {e.u, e.v, e.w, false};
    if (e.u != e.v) arcs[fill++] = {e.v, e.u, e.w, false};
  }
  prim::sort(arcs, arc_less, ws.scratch(), pool);

  // Touched owners (sorted unique) and each owner's arc range. The
  // touched list leaves with the result, so it draws from the pool.
  ApplyResult result;
  std::size_t num_groups = 0;
  for (std::size_t a = 0; a < num_arcs;) {
    std::size_t b = a;
    while (b < num_arcs && arcs[b].owner == arcs[a].owner) ++b;
    ++num_groups;
    a = b;
  }
  result.touched = ws.take<VertexId>(num_groups);
  auto ranges = ws.buffer<std::pair<std::size_t, std::size_t>>(
      Slot::kStreamRanges, num_groups);
  for (std::size_t a = 0, g = 0; a < num_arcs; ++g) {
    std::size_t b = a;
    while (b < num_arcs && arcs[b].owner == arcs[a].owner) ++b;
    result.touched[g] = arcs[a].owner;
    ranges[g] = {a, b};
    a = b;
  }

  // Pass A: merged degree of every touched row, plus the applied-entry
  // counts (taken on the owner <= nbr half so undirected edges count
  // once). Vertices the delta created but never named keep degree 0.
  auto new_degree = ws.buffer<EdgeIdx>(Slot::kStreamNewDegree, new_n);
  pool.parallel_for(new_n, [&](std::size_t v, unsigned) {
    new_degree[v] =
        v < old_n ? graph.degree(static_cast<VertexId>(v)) : EdgeIdx{0};
  });
  prim::Scratch::Frame frame(ws.scratch());
  auto ins_partial = ws.scratch().alloc<std::size_t>(pool.size());
  auto del_partial = ws.scratch().alloc<std::size_t>(pool.size());
  for (unsigned w = 0; w < pool.size(); ++w) {
    ins_partial[w] = 0;
    del_partial[w] = 0;
  }
  pool.parallel_for(result.touched.size(), [&](std::size_t t, unsigned worker) {
    const VertexId v = result.touched[t];
    const auto [a, b] = ranges[t];
    const bool existing = v < old_n;
    EdgeIdx count = 0;
    merge_row(existing ? graph.neighbors(v) : std::span<const VertexId>{},
              existing ? graph.weights(v) : std::span<const Weight>{},
              std::span<const DeltaArc>(arcs.data() + a, b - a),
              [&](VertexId, Weight) { ++count; },
              [&](VertexId nbr, bool was_present, bool has_del, Weight ins_w) {
                if (v > nbr) return;  // count undirected edges once
                if (has_del && was_present) ++del_partial[worker];
                if (ins_w > 0) ++ins_partial[worker];
              });
    new_degree[v] = count;
  });
  for (unsigned w = 0; w < pool.size(); ++w) {
    result.inserted += ins_partial[w];
    result.deleted += del_partial[w];
  }

  // New offsets (Thrust-style scan), then the row copy/merge pass. The
  // three CSR arrays leave with the result: recycling pool.
  std::vector<EdgeIdx> offsets =
      ws.take<EdgeIdx>(static_cast<std::size_t>(new_n) + 1);
  offsets[new_n] = prim::exclusive_scan(
      std::span<const EdgeIdx>(new_degree.data(), new_n),
      std::span<EdgeIdx>(offsets.data(), new_n), ws.scratch(), pool);

  auto touch_slot = ws.buffer<std::uint32_t>(Slot::kStreamTouchSlot, new_n);
  pool.parallel_for(new_n, [&](std::size_t v, unsigned) {
    touch_slot[v] = ~0u;
  });
  for (std::size_t t = 0; t < result.touched.size(); ++t) {
    touch_slot[result.touched[t]] = static_cast<std::uint32_t>(t);
  }

  std::vector<VertexId> adj =
      ws.take<VertexId>(static_cast<std::size_t>(offsets[new_n]));
  std::vector<Weight> weights =
      ws.take<Weight>(static_cast<std::size_t>(offsets[new_n]));
  pool.parallel_for(new_n, [&](std::size_t vi, unsigned) {
    const auto v = static_cast<VertexId>(vi);
    EdgeIdx out = offsets[vi];
    const std::uint32_t slot = touch_slot[vi];
    if (slot == ~0u) {
      if (v >= old_n) return;  // new isolated vertex (none in practice)
      const auto nbrs = graph.neighbors(v);
      const auto ws = graph.weights(v);
      std::copy(nbrs.begin(), nbrs.end(), adj.begin() + static_cast<std::ptrdiff_t>(out));
      std::copy(ws.begin(), ws.end(), weights.begin() + static_cast<std::ptrdiff_t>(out));
      return;
    }
    const auto [a, b] = ranges[slot];
    const bool existing = v < old_n;
    merge_row(existing ? graph.neighbors(v) : std::span<const VertexId>{},
              existing ? graph.weights(v) : std::span<const Weight>{},
              std::span<const DeltaArc>(arcs.data() + a, b - a),
              [&](VertexId nbr, Weight w) {
                adj[out] = nbr;
                weights[out] = w;
                ++out;
              },
              [](VertexId, bool, bool, Weight) {});
  });

  result.graph =
      Csr(std::move(offsets), std::move(adj), std::move(weights), ws.scratch());
  return result;
}

}  // namespace glouvain::stream
