// Affected-vertex frontier of a delta: the vertex set the warm-start
// sweep re-optimizes. Rule (see DESIGN.md "Streaming"):
//
//   frontier = touched endpoints
//            ∪ members of every community containing a touched endpoint
//              (community closure — a changed edge can shift the best
//              destination of any member of the communities it joins)
//            ∪ `hops` further adjacency expansions over the new graph.
//
// Everything outside the frontier keeps its seeded community during the
// warm level-0 sweep; the normal aggregation hierarchy then runs on the
// contracted graph as usual.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::stream {

struct FrontierOptions {
  /// Include every member of a touched endpoint's current community.
  bool community_closure = true;
  /// Extra adjacency expansions after the closure (0 = none).
  unsigned hops = 0;
};

/// `community` is the pre-delta partition with dense labels; vertices
/// of `graph` beyond community.size() (vertices the delta created) are
/// frontier members automatically. `touched` must be sorted unique ids
/// below graph.num_vertices(). Returns sorted unique vertex ids.
std::vector<graph::VertexId> compute_frontier(
    const graph::Csr& graph, std::span<const graph::Community> community,
    std::span<const graph::VertexId> touched, const FrontierOptions& options = {},
    simt::ThreadPool& pool = simt::ThreadPool::global());

}  // namespace glouvain::stream
