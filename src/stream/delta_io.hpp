// Text format for delta batches, consumed by `glouvain stream` and
// emitted by `glouvain churn`. Line-oriented, `#`/`%` comments skipped:
//
//   batch <stamp>        -- starts a new Delta (stamp optional, u64)
//   + u v [w]            -- insertion (w defaults to 1)
//   - u v                -- deletion
//
// Edges before the first `batch` line form an implicit batch 0. Status
// vocabulary matches graph/io: missing file -> kNotFound, malformed
// line -> kInvalidArgument, mid-stream failure -> kIoError.
#pragma once

#include <string>
#include <vector>

#include "stream/delta.hpp"
#include "util/status.hpp"

namespace glouvain::stream {

util::StatusOr<std::vector<Delta>> try_load_deltas(const std::string& path);

util::Status try_save_deltas(const std::vector<Delta>& deltas,
                             const std::string& path);

}  // namespace glouvain::stream
