// Batched delta application: rebuilds a canonical Csr from the current
// graph plus one stream::Delta without re-canonicalizing the whole edge
// list. Untouched rows are copied verbatim; only rows owned by a delta
// endpoint are re-merged. The rebuild runs on the prim primitives
// (parallel sort of the delta arcs, exclusive_scan for the new
// offsets, parallel row copy/merge), mirroring the Thrust-based host
// pipeline the paper uses for aggregation.
//
// Cost: O(n + m) for the row copy (the CSR arrays are immutable, as on
// the device), plus O(|delta| log |delta|) to sort the delta arcs and
// O(sum of touched-row degrees) to merge.
#pragma once

#include <cstddef>
#include <vector>

#include "core/workspace.hpp"
#include "graph/csr.hpp"
#include "simt/thread_pool.hpp"
#include "stream/delta.hpp"

namespace glouvain::stream {

struct ApplyResult {
  graph::Csr graph;
  /// Sorted, duplicate-free endpoints of every arc the delta touched
  /// (including no-op deletions' endpoints when in range) — the seeds
  /// of the affected-vertex frontier.
  std::vector<graph::VertexId> touched;
  /// Insertion entries applied (each undirected edge counted once).
  std::size_t inserted = 0;
  /// Deletion entries that removed an existing edge.
  std::size_t deleted = 0;
};

/// Apply `delta` to `graph`, producing the mutated graph. The result is
/// bitwise-identical to rebuilding the mutated edge list through
/// graph::build_csr (see tests/stream_test.cpp). Insertions with
/// non-positive weight and deletions of absent edges are ignored.
ApplyResult apply_delta(const graph::Csr& graph, const Delta& delta,
                        simt::ThreadPool& pool = simt::ThreadPool::global());

/// Allocation-free rebuild: delta arcs, ranges, degrees and the merge
/// temporaries come from `ws`'s slot buffers and scratch, the new CSR
/// arrays from its recycling pool (sessions feed the replaced graph
/// back via Workspace::recycle). Steady-state deltas of a bounded size
/// touch the heap only to grow the result past its high-water mark.
ApplyResult apply_delta(const graph::Csr& graph, const Delta& delta,
                        core::Workspace& ws,
                        simt::ThreadPool& pool = simt::ThreadPool::global());

}  // namespace glouvain::stream
