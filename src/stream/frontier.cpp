#include "stream/frontier.hpp"

#include <algorithm>

#include "simt/atomics.hpp"

namespace glouvain::stream {

namespace {
using graph::Community;
using graph::VertexId;
}  // namespace

std::vector<VertexId> compute_frontier(const graph::Csr& graph,
                                       std::span<const Community> community,
                                       std::span<const VertexId> touched,
                                       const FrontierOptions& options,
                                       simt::ThreadPool& pool) {
  const VertexId n = graph.num_vertices();
  std::vector<std::uint8_t> in_frontier(n, 0);
  for (const VertexId v : touched) in_frontier[v] = 1;
  // Vertices the delta created have no seeded community yet.
  for (VertexId v = static_cast<VertexId>(community.size()); v < n; ++v) {
    in_frontier[v] = 1;
  }

  if (options.community_closure && !community.empty()) {
    // Mark the communities of the seeds, then sweep every vertex once.
    Community max_label = 0;
    for (const Community c : community) max_label = std::max(max_label, c);
    std::vector<std::uint8_t> affected(static_cast<std::size_t>(max_label) + 1, 0);
    for (const VertexId v : touched) {
      if (v < community.size()) affected[community[v]] = 1;
    }
    pool.parallel_for(community.size(), [&](std::size_t v, unsigned) {
      if (affected[community[v]]) in_frontier[v] = 1;
    });
  }

  for (unsigned hop = 0; hop < options.hops; ++hop) {
    std::vector<std::uint8_t> next(in_frontier);
    pool.parallel_for(n, [&](std::size_t vi, unsigned) {
      if (next[vi]) return;
      for (const VertexId j : graph.neighbors(static_cast<VertexId>(vi))) {
        if (in_frontier[j]) {
          next[vi] = 1;
          return;
        }
      }
    });
    in_frontier.swap(next);
  }

  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < n; ++v) {
    if (in_frontier[v]) frontier.push_back(v);
  }
  return frontier;
}

}  // namespace glouvain::stream
