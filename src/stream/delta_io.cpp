#include "stream/delta_io.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

namespace glouvain::stream {

namespace {

util::Status bad_line(std::size_t line_no, const std::string& line) {
  return util::Status::invalid_argument("delta file line " +
                                       std::to_string(line_no) +
                                       ": malformed: '" + line + "'");
}

}  // namespace

util::StatusOr<std::vector<Delta>> try_load_deltas(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::not_found("cannot open " + path);

  std::vector<Delta> deltas;
  bool open_batch = false;  // the implicit batch 0 is created lazily
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) continue;  // blank
    if (head[0] == '#' || head[0] == '%') continue;

    if (head == "batch") {
      Delta next;
      ls >> next.stamp;  // optional; default 0
      deltas.push_back(std::move(next));
      open_batch = true;
      continue;
    }

    if (head != "+" && head != "-") return bad_line(line_no, line);
    graph::Edge e;
    if (!(ls >> e.u >> e.v)) return bad_line(line_no, line);
    e.w = 1;
    if (head == "+") ls >> e.w;  // optional weight, insertions only

    if (!open_batch) {
      deltas.emplace_back();
      open_batch = true;
    }
    if (head == "+") {
      deltas.back().insertions.push_back(e);
    } else {
      deltas.back().deletions.push_back(e);
    }
  }
  if (in.bad()) return util::Status::io_error("read failed on " + path);
  return deltas;
}

util::Status try_save_deltas(const std::vector<Delta>& deltas,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::io_error("cannot open " + path +
                                          " for writing");
  for (const Delta& d : deltas) {
    out << "batch " << d.stamp << "\n";
    for (const graph::Edge& e : d.deletions) {
      out << "- " << e.u << ' ' << e.v << "\n";
    }
    for (const graph::Edge& e : d.insertions) {
      out << "+ " << e.u << ' ' << e.v << ' ' << e.w << "\n";
    }
  }
  out.flush();
  if (!out) return util::Status::io_error("write failed on " + path);
  return util::Status::ok_status();
}

}  // namespace glouvain::stream
