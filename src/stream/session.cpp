#include "stream/session.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "obs/recorder.hpp"
#include "stream/apply.hpp"
#include "util/timer.hpp"

namespace glouvain::stream {

using graph::Community;
using graph::VertexId;

Session::Session(graph::Csr graph, SessionOptions options,
                 std::unique_ptr<detect::Detector> detector)
    : graph_(std::move(graph)),
      options_(std::move(options)),
      detector_(std::move(detector)) {}

util::StatusOr<Session> Session::open(graph::Csr graph, SessionOptions options,
                                      obs::Recorder* recorder) {
  options.options.warm_start.reset();  // the session drives warm starts
  auto detector = detect::make(options.backend, options.extensions);
  if (!detector.ok()) return detector.status();
  Session session(std::move(graph), std::move(options),
                  std::move(detector).value());
  try {
    obs::Span span(recorder, "stream/detect");
    session.result_ = session.detector_->run(session.graph_,
                                             session.options_.options,
                                             recorder);
  } catch (const std::exception& e) {
    return util::Status::internal(std::string("initial detection failed: ") +
                                  e.what());
  }
  return session;
}

util::StatusOr<DeltaReport> Session::apply(const Delta& delta,
                                           obs::Recorder* recorder) {
  DeltaReport report;
  util::Timer timer;

  ApplyResult applied;
  {
    obs::Span span(recorder, "stream/apply");
    applied = apply_delta(graph_, delta, ws_);
  }
  report.apply_seconds = timer.seconds();
  report.inserted = applied.inserted;
  report.deleted = applied.deleted;
  if (recorder) {
    recorder->count("stream/touched",
                    static_cast<double>(applied.touched.size()));
  }

  // Nothing changed and nothing could have: keep the partition as-is.
  // (A no-op deletion still touches its endpoints, so only a literally
  // empty delta lands here.)
  if (applied.touched.empty() &&
      applied.graph.num_vertices() == graph_.num_vertices()) {
    ++epoch_;
    report.epoch = epoch_;
    report.modularity = result_.modularity;
    return report;
  }

  detect::Options opts = options_.options;
  if (options_.warm) {
    auto warm = std::make_shared<detect::WarmStart>();
    timer.reset();
    {
      obs::Span span(recorder, "stream/frontier");
      warm->frontier = compute_frontier(applied.graph, result_.community,
                                        applied.touched, options_.frontier);
    }
    report.frontier_seconds = timer.seconds();
    report.frontier_size = warm->frontier.size();
    if (recorder) {
      recorder->count("stream/frontier_size",
                      static_cast<double>(warm->frontier.size()));
    }

    // Seed = previous partition, padded with fresh singleton labels for
    // vertices the delta created. Detector labels are dense in
    // [0, k), k <= old n, so a new vertex's own id can never collide.
    const std::size_t n_new = applied.graph.num_vertices();
    warm->seed.resize(n_new);
    std::copy(result_.community.begin(), result_.community.end(),
              warm->seed.begin());
    for (std::size_t v = result_.community.size(); v < n_new; ++v) {
      warm->seed[v] = static_cast<Community>(v);
    }
    opts.warm_start = std::move(warm);
  }

  timer.reset();
  detect::Result next;
  try {
    obs::Span span(recorder, "stream/detect");
    next = detector_->run(applied.graph, opts, recorder);
  } catch (const std::exception& e) {
    return util::Status::internal(std::string("re-detection failed: ") +
                                  e.what());
  }
  report.detect_seconds = timer.seconds();

  // Retire the replaced graph into the workspace pools: its arrays
  // become the next epoch's CSR without new heap blocks.
  graph::Csr retired = std::move(graph_);
  graph_ = std::move(applied.graph);
  ws_.recycle(std::move(retired));
  ws_.put(std::move(applied.touched));
  result_ = std::move(next);
  ++epoch_;
  report.epoch = epoch_;
  report.modularity = result_.modularity;
  return report;
}

}  // namespace glouvain::stream
