// A long-lived dynamic-graph session: owns the mutable graph, the
// latest partition, and a warm detector instance. Each apply() runs
// the delta pipeline
//
//   apply_delta  ->  compute_frontier  ->  warm-start detection
//
// and advances the session epoch. The epoch is the delta count since
// open(); the svc result cache folds it into its fingerprint so cached
// results never outlive a mutation.
//
//   auto s = stream::Session::open(graph);          // cold detection
//   auto rep = s->apply(delta);                     // warm re-detection
//   s->community(), s->result().modularity, ...
//
// A Session is single-threaded like the Detector it wraps; the service
// layer pins each session to one device worker.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/workspace.hpp"
#include "detect/detector.hpp"
#include "detect/options.hpp"
#include "detect/result.hpp"
#include "graph/csr.hpp"
#include "stream/delta.hpp"
#include "stream/frontier.hpp"
#include "util/status.hpp"

namespace glouvain::obs {
class Recorder;
}

namespace glouvain::stream {

struct SessionOptions {
  /// Detection backend for the initial run and every re-detection.
  /// "core" and "seq" have true warm paths; other backends fall back to
  /// a cold run per delta (correct, never stale).
  std::string backend = "core";
  detect::Options options;        ///< warm_start is managed by the session
  detect::Extensions extensions;  ///< backend-specific knobs
  FrontierOptions frontier;
  /// false = full cold recompute on every delta (the baseline the
  /// warm-start speedup is measured against in bench/stream_updates).
  bool warm = true;
};

/// What one apply() did, for logging and the benchmark tables.
struct DeltaReport {
  std::uint64_t epoch = 0;         ///< session epoch after this delta
  std::size_t inserted = 0;        ///< edges added (undirected, once)
  std::size_t deleted = 0;         ///< edges removed
  std::size_t frontier_size = 0;   ///< vertices the warm sweep may move
  double apply_seconds = 0;
  double frontier_seconds = 0;
  double detect_seconds = 0;
  double modularity = 0;           ///< of the post-delta partition
};

class Session {
 public:
  /// Create a session and run the initial (cold) detection on `graph`.
  /// Fails with kInvalidArgument for an unknown backend.
  static util::StatusOr<Session> open(graph::Csr graph,
                                      SessionOptions options = {},
                                      obs::Recorder* recorder = nullptr);

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Apply one delta batch: mutate the graph, compute the affected
  /// frontier, re-detect (warm unless options().warm is false). On
  /// error the session is unchanged — same graph, partition and epoch.
  /// `recorder` (optional) receives stream/apply, stream/frontier and
  /// stream/detect spans with the detector's own tree nested inside.
  util::StatusOr<DeltaReport> apply(const Delta& delta,
                                    obs::Recorder* recorder = nullptr);

  const graph::Csr& graph() const noexcept { return graph_; }
  const detect::Result& result() const noexcept { return result_; }
  const std::vector<graph::Community>& community() const noexcept {
    return result_.community;
  }
  /// Deltas applied since open(). Folded into svc cache fingerprints.
  std::uint64_t epoch() const noexcept { return epoch_; }
  const SessionOptions& options() const noexcept { return options_; }

 private:
  Session(graph::Csr graph, SessionOptions options,
          std::unique_ptr<detect::Detector> detector);

  graph::Csr graph_;
  SessionOptions options_;
  std::unique_ptr<detect::Detector> detector_;
  detect::Result result_;
  std::uint64_t epoch_ = 0;
  /// Session-owned rebuild arena: delta after delta, apply_delta's
  /// temporaries and the replaced graph's arrays cycle through the
  /// same storage (the retired CSR feeds the next epoch's CSR).
  core::Workspace ws_;
};

}  // namespace glouvain::stream
