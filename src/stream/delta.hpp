// The mutation currency of the dynamic-graph subsystem: one Delta is a
// timestamped batch of edge insertions and deletions applied atomically
// to a stream::Session (or directly via stream::apply_delta).
//
// Semantics, chosen to match "rebuild the mutated edge list from
// scratch" exactly:
//   * a deletion {u, v} removes the undirected edge entirely (whatever
//     its accumulated weight); deleting an absent edge is a no-op;
//   * an insertion {u, v, w} adds w to the edge's weight, creating the
//     edge (or self-loop, once, per the Csr conventions) if absent;
//   * within one batch every deletion is applied before any insertion,
//     so "delete then re-insert" replaces an edge's weight;
//   * insertion endpoints beyond the current vertex count grow the
//     graph (new vertices start isolated except for their new edges).
// Header-only so gen::churn can produce Deltas without linking stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace glouvain::stream {

struct Delta {
  /// Batch timestamp (epoch index for generated churn; informational).
  std::uint64_t stamp = 0;
  std::vector<graph::Edge> insertions;
  std::vector<graph::Edge> deletions;

  std::size_t size() const noexcept {
    return insertions.size() + deletions.size();
  }
  bool empty() const noexcept { return insertions.empty() && deletions.empty(); }
};

}  // namespace glouvain::stream
