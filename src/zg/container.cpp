#include "zg/container.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>

#if __has_include(<sys/mman.h>)
#define GLOUVAIN_ZG_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define GLOUVAIN_ZG_HAVE_MMAP 0
#endif

namespace glouvain::zg {

namespace {

constexpr char kMagic[4] = {'G', 'L', 'Z', 'G'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t n;
  std::uint64_t arcs;
  std::uint64_t loops;
  double total_weight;
  std::uint8_t weight_mode;
  std::uint8_t reserved[3];
  std::uint32_t skip_interval;
  std::uint64_t skip_count;
  std::uint64_t stream_bytes;
};
static_assert(sizeof(Header) == 64, "GLZG header must pack to 64 bytes");

constexpr std::size_t align8(std::size_t x) noexcept {
  return (x + 7) & ~std::size_t{7};
}

std::size_t degrees_offset(const Header& h) noexcept {
  return sizeof(Header) + h.skip_count * sizeof(std::uint64_t);
}

std::size_t stream_offset(const Header& h) noexcept {
  return align8(degrees_offset(h) + h.n * sizeof(std::uint32_t));
}

std::string msg(const std::string& path, const std::string& what) {
  return path + ": " + what;
}

/// Validate a header against the actual file size and build the span
/// view over `base` (the whole file image). Every length is checked
/// before any span is formed: a truncated or corrupt container must
/// not produce out-of-bounds spans.
util::StatusOr<ZCsr> make_view(const std::string& path,
                               const std::uint8_t* base, std::size_t size) {
  if (size < sizeof(Header)) {
    return util::Status::invalid_argument(
        msg(path, "not a GLZG container (file shorter than header)"));
  }
  Header h;
  std::memcpy(&h, base, sizeof h);
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    return util::Status::invalid_argument(
        msg(path, "not a GLZG container (bad magic)"));
  }
  if (h.version != kVersion) {
    return util::Status::invalid_argument(
        msg(path, "unsupported GLZG version " + std::to_string(h.version)));
  }
  if (h.weight_mode > static_cast<std::uint8_t>(WeightMode::kRaw)) {
    return util::Status::invalid_argument(
        msg(path, "unknown weight mode " + std::to_string(h.weight_mode)));
  }
  if (h.skip_interval != ZCsr::kSkipInterval) {
    return util::Status::invalid_argument(
        msg(path, "unsupported skip interval " +
                      std::to_string(h.skip_interval)));
  }
  // VertexId is 32-bit with the top value reserved as the invalid
  // sentinel: refuse anything that would narrow (see graph/io's
  // matching guard for plain binary graphs).
  if (h.n >= graph::kInvalidVertex) {
    return util::Status::invalid_argument(
        msg(path, "vertex count " + std::to_string(h.n) +
                      " exceeds the 32-bit vertex-id space"));
  }
  const std::uint64_t expected_skips =
      h.n == 0 ? 0 : (h.n - 1) / ZCsr::kSkipInterval + 1;
  if (h.skip_count != expected_skips) {
    return util::Status::invalid_argument(
        msg(path, "skip-index count mismatch"));
  }
  // Section extents, computed in 64-bit with overflow guards.
  if (h.skip_count > size / sizeof(std::uint64_t) ||
      h.n > size / sizeof(std::uint32_t)) {
    return util::Status::invalid_argument(
        msg(path, "section lengths exceed file size"));
  }
  const std::size_t stream_at =
      stream_offset(h);
  if (stream_at > size || h.stream_bytes > size - stream_at) {
    return util::Status::invalid_argument(
        msg(path, "truncated container (stream section out of bounds)"));
  }

  const auto* skip =
      reinterpret_cast<const std::uint64_t*>(base + sizeof(Header));
  const auto* degrees =
      reinterpret_cast<const std::uint32_t*>(base + degrees_offset(h));
  const std::uint8_t* stream = base + stream_at;

  std::uint64_t degree_sum = 0;
  for (std::uint64_t v = 0; v < h.n; ++v) degree_sum += degrees[v];
  if (degree_sum != h.arcs) {
    return util::Status::invalid_argument(
        msg(path, "degree sum disagrees with arc count"));
  }
  for (std::uint64_t s = 0; s < h.skip_count; ++s) {
    if (skip[s] > h.stream_bytes) {
      return util::Status::invalid_argument(
          msg(path, "skip-index offset out of bounds"));
    }
  }

  return ZCsr::view(static_cast<graph::VertexId>(h.n), h.arcs, h.loops,
                    h.total_weight, static_cast<WeightMode>(h.weight_mode),
                    {degrees, static_cast<std::size_t>(h.n)},
                    {skip, static_cast<std::size_t>(h.skip_count)},
                    {stream, static_cast<std::size_t>(h.stream_bytes)});
}

}  // namespace

util::Status save(const ZCsr& z, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::io_error(msg(path, "cannot open for writing"));
  }

  Header h{};
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.version = kVersion;
  h.n = z.num_vertices();
  h.arcs = z.num_arcs();
  h.loops = z.num_loops();
  h.total_weight = z.total_weight();
  h.weight_mode = static_cast<std::uint8_t>(z.weight_mode());
  h.skip_interval = ZCsr::kSkipInterval;
  h.skip_count = z.skip().size();
  h.stream_bytes = z.stream().size();

  out.write(reinterpret_cast<const char*>(&h), sizeof h);
  out.write(reinterpret_cast<const char*>(z.skip().data()),
            static_cast<std::streamsize>(z.skip().size_bytes()));
  out.write(reinterpret_cast<const char*>(z.degrees().data()),
            static_cast<std::streamsize>(z.degrees().size_bytes()));
  const std::size_t pad =
      stream_offset(h) - (degrees_offset(h) + z.degrees().size_bytes());
  const char zeros[8] = {};
  out.write(zeros, static_cast<std::streamsize>(pad));
  out.write(reinterpret_cast<const char*>(z.stream().data()),
            static_cast<std::streamsize>(z.stream().size()));
  out.flush();
  if (!out) {
    return util::Status::io_error(msg(path, "write failed"));
  }
  return util::Status::ok_status();
}

util::StatusOr<ZCsr> load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return util::Status::not_found(msg(path, "cannot open"));
  }
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> image(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(image.data()),
            static_cast<std::streamsize>(size));
  }
  if (!in) {
    return util::Status::io_error(msg(path, "read failed"));
  }
  auto view = make_view(path, image.data(), size);
  if (!view.ok()) return view.status();
  // Copy the validated sections out of the transient file image into
  // an owning ZCsr.
  const ZCsr& z = view.value();
  return ZCsr::own(
      z.num_vertices(), z.num_arcs(), z.num_loops(), z.total_weight(),
      z.weight_mode(),
      std::vector<std::uint32_t>(z.degrees().begin(), z.degrees().end()),
      std::vector<std::uint64_t>(z.skip().begin(), z.skip().end()),
      std::vector<std::uint8_t>(z.stream().begin(), z.stream().end()));
}

MappedGraph& MappedGraph::operator=(MappedGraph&& o) noexcept {
  if (this == &o) return *this;
  this->~MappedGraph();
  view_ = std::move(o.view_);
  addr_ = o.addr_;
  len_ = o.len_;
  fd_ = o.fd_;
  // A fallback view's spans point into fallback_'s heap buffer, which
  // the vector move preserves — no re-anchoring needed.
  fallback_ = std::move(o.fallback_);
  o.addr_ = nullptr;
  o.len_ = 0;
  o.fd_ = -1;
  return *this;
}

MappedGraph::~MappedGraph() {
#if GLOUVAIN_ZG_HAVE_MMAP
  if (addr_ != nullptr) ::munmap(addr_, len_);
  if (fd_ >= 0) ::close(fd_);
#endif
  addr_ = nullptr;
  fd_ = -1;
}

util::StatusOr<MappedGraph> MappedGraph::open(const std::string& path) {
#if GLOUVAIN_ZG_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::not_found(msg(path, "cannot open"));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::Status::io_error(msg(path, "fstat failed"));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return util::Status::invalid_argument(msg(path, "empty file"));
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr == MAP_FAILED) {
    ::close(fd);
    return util::Status::io_error(
        msg(path, std::string("mmap failed: ") + std::strerror(errno)));
  }
  // The row stream is consumed front-to-back by the level-0 kernels:
  // tell the pager so readahead runs ahead of the decode cursors.
  ::madvise(addr, size, MADV_SEQUENTIAL);
  ::madvise(addr, size, MADV_WILLNEED);

  auto view = make_view(path, static_cast<const std::uint8_t*>(addr), size);
  if (!view.ok()) {
    ::munmap(addr, size);
    ::close(fd);
    return view.status();
  }
  MappedGraph g;
  g.view_ = std::move(view).value();
  g.addr_ = addr;
  g.len_ = size;
  g.fd_ = fd;
  return g;
#else
  // No mmap on this platform: buffered read, same validation.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return util::Status::not_found(msg(path, "cannot open"));
  }
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  MappedGraph g;
  g.fallback_.resize(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(g.fallback_.data()),
            static_cast<std::streamsize>(size));
  }
  if (!in) {
    return util::Status::io_error(msg(path, "read failed"));
  }
  g.len_ = size;
  auto view = make_view(path, g.fallback_.data(), size);
  if (!view.ok()) return view.status();
  g.view_ = std::move(view).value();
  return g;
#endif
}

}  // namespace glouvain::zg
