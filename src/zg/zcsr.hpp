// Delta/varint-compressed CSR — the in-memory form of the zg storage
// layer. The adjacency of a Csr (rows already sorted ascending, the
// validate() invariant) compresses as one byte stream:
//
//   row(v) = [row_bytes varint]                  // bytes after prefix
//            [zigzag(adj[0] - v)      varint]    // first neighbour
//            [zigzag(adj[i]-adj[i-1]) varint]*   // remaining deltas
//            [weights, per WeightMode]
//
// Degrees live in a separate uncompressed uint32 array (kernels bin
// vertices by degree in O(1)), and a skip index records the absolute
// stream offset of every kSkipInterval-th row so random access costs
// at most kSkipInterval-1 prefix hops. Weights use the cheapest mode
// that round-trips bitwise: kUniform (all 1.0 — zero bytes, the
// unweighted-input case), kIntegralVarint (non-negative integral
// doubles ≤ 2^53, exact in a uint64 — aggregated levels of unweighted
// graphs), or kRaw (little-endian double images).
//
// A ZCsr either owns its arrays (encode()) or is a view over spans
// into an open container mapping (zg::MappedGraph) — same read API,
// so kernels are oblivious to residency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "zg/varint.hpp"

namespace glouvain::zg {

enum class WeightMode : std::uint8_t {
  kUniform = 0,        ///< every weight is exactly 1.0; zero bytes
  kIntegralVarint = 1, ///< non-negative integral doubles as varints
  kRaw = 2,            ///< 8-byte little-endian double images
};

inline const char* to_string(WeightMode mode) noexcept {
  switch (mode) {
    case WeightMode::kUniform: return "uniform";
    case WeightMode::kIntegralVarint: return "integral";
    case WeightMode::kRaw: return "raw";
  }
  return "?";
}

class ZCsr {
 public:
  /// Skip-index sampling stride: one absolute offset per this many
  /// rows. 64 keeps the index at ~1/8 bit per adjacency byte while a
  /// cold random access skips at most 63 row prefixes.
  static constexpr std::uint32_t kSkipInterval = 64;

  ZCsr() = default;

  /// Compress `g`. The encoding is total: any valid Csr round-trips
  /// bitwise (weights included) through decode_all().
  static ZCsr encode(const graph::Csr& g);

  /// Wrap externally owned sections (the mmap path). Spans must
  /// outlive the view; no copies are made.
  static ZCsr view(graph::VertexId n, graph::EdgeIdx arcs,
                   graph::EdgeIdx loops, graph::Weight total_weight,
                   WeightMode mode, std::span<const std::uint32_t> degrees,
                   std::span<const std::uint64_t> skip,
                   std::span<const std::uint8_t> stream);

  /// Adopt already-validated sections (the container load path).
  static ZCsr own(graph::VertexId n, graph::EdgeIdx arcs,
                  graph::EdgeIdx loops, graph::Weight total_weight,
                  WeightMode mode, std::vector<std::uint32_t> degrees,
                  std::vector<std::uint64_t> skip,
                  std::vector<std::uint8_t> stream);

  graph::VertexId num_vertices() const noexcept { return n_; }
  graph::EdgeIdx num_arcs() const noexcept { return arcs_; }
  graph::EdgeIdx num_edges() const noexcept { return (arcs_ + loops_) / 2; }
  graph::EdgeIdx num_loops() const noexcept { return loops_; }
  /// The modularity denominator "2m", copied bitwise from the source
  /// Csr so z-path runs share the plain path's arithmetic exactly.
  graph::Weight total_weight() const noexcept { return total_weight_; }
  WeightMode weight_mode() const noexcept { return mode_; }

  std::uint32_t degree(graph::VertexId v) const noexcept {
    return degrees_[v];
  }
  std::uint32_t max_degree() const noexcept { return max_degree_; }

  /// Sequential row reader. Decode order is the row's storage order,
  /// so weight sums match plain-CSR row iteration bitwise.
  class Cursor {
   public:
    Cursor() = default;

    /// Row the cursor is positioned at (== num_vertices() at end).
    graph::VertexId vertex() const noexcept { return v_; }

    /// Decode the current row into caller buffers (each must hold
    /// degree(vertex()) entries; `weights` may be null to skip the
    /// weight section) and advance to the next row.
    void decode_into(graph::VertexId* adj, graph::Weight* weights) noexcept {
      const std::uint32_t deg = z_->degrees_[v_];
      varint_read(p_);  // row_bytes prefix
      if (deg > 0) {
        std::int64_t prev = static_cast<std::int64_t>(v_) +
                            zigzag_decode(varint_read(p_));
        adj[0] = static_cast<graph::VertexId>(prev);
        for (std::uint32_t i = 1; i < deg; ++i) {
          prev += zigzag_decode(varint_read(p_));
          adj[i] = static_cast<graph::VertexId>(prev);
        }
        switch (z_->mode_) {
          case WeightMode::kUniform:
            if (weights != nullptr) {
              for (std::uint32_t i = 0; i < deg; ++i) weights[i] = 1.0;
            }
            break;
          case WeightMode::kIntegralVarint:
            if (weights != nullptr) {
              for (std::uint32_t i = 0; i < deg; ++i) {
                weights[i] = static_cast<graph::Weight>(varint_read(p_));
              }
            } else {
              for (std::uint32_t i = 0; i < deg; ++i) varint_read(p_);
            }
            break;
          case WeightMode::kRaw:
            if (weights != nullptr) {
              std::memcpy(weights, p_, deg * sizeof(graph::Weight));
            }
            p_ += deg * sizeof(graph::Weight);
            break;
        }
      }
      ++v_;
    }

    /// Advance past the current row without decoding it.
    void skip_row() noexcept {
      const std::uint64_t row_bytes = varint_read(p_);
      p_ += row_bytes;
      ++v_;
    }

   private:
    friend class ZCsr;
    Cursor(const ZCsr* z, const std::uint8_t* p, graph::VertexId v) noexcept
        : z_(z), p_(p), v_(v) {}

    const ZCsr* z_ = nullptr;
    const std::uint8_t* p_ = nullptr;
    graph::VertexId v_ = 0;
  };

  Cursor cursor() const noexcept { return {this, stream_.data(), 0}; }

  /// Position a cursor at row `v`: jump to the nearest skip-index
  /// sample at or below v, then hop row prefixes.
  Cursor cursor_at(graph::VertexId v) const noexcept {
    const std::size_t sample = v / kSkipInterval;
    Cursor c{this, stream_.data() + skip_[sample],
             static_cast<graph::VertexId>(sample * kSkipInterval)};
    while (c.vertex() < v) c.skip_row();
    return c;
  }

  /// Random-access decode of one row (see Cursor::decode_into).
  void decode_row(graph::VertexId v, graph::VertexId* adj,
                  graph::Weight* weights) const noexcept {
    Cursor c = cursor_at(v);
    c.decode_into(adj, weights);
  }

  /// Reconstruct the plain Csr (bitwise-equal to the encode() input).
  graph::Csr decode_all() const;

  /// Compressed adjacency+weight stream bytes.
  std::size_t bytes_stream() const noexcept { return stream_.size(); }
  /// Side-table bytes: skip index + degree array.
  std::size_t bytes_index() const noexcept {
    return skip_.size() * sizeof(std::uint64_t) +
           degrees_.size() * sizeof(std::uint32_t);
  }
  /// What the plain Csr spends on the same data (offsets + adjacency
  /// + weights), for the compression-ratio counters.
  std::size_t plain_bytes() const noexcept {
    return (static_cast<std::size_t>(n_) + 1) * sizeof(graph::EdgeIdx) +
           static_cast<std::size_t>(arcs_) *
               (sizeof(graph::VertexId) + sizeof(graph::Weight));
  }

  // Raw sections, for the container writer.
  std::span<const std::uint32_t> degrees() const noexcept { return degrees_; }
  std::span<const std::uint64_t> skip() const noexcept { return skip_; }
  std::span<const std::uint8_t> stream() const noexcept { return stream_; }

 private:
  graph::VertexId n_ = 0;
  graph::EdgeIdx arcs_ = 0;
  graph::EdgeIdx loops_ = 0;
  graph::Weight total_weight_ = 0;
  WeightMode mode_ = WeightMode::kUniform;
  std::uint32_t max_degree_ = 0;

  // Views over either the owned_* vectors or an external mapping.
  std::span<const std::uint32_t> degrees_;
  std::span<const std::uint64_t> skip_;
  std::span<const std::uint8_t> stream_;

  std::vector<std::uint32_t> owned_degrees_;
  std::vector<std::uint64_t> owned_skip_;
  std::vector<std::uint8_t> owned_stream_;

  void adopt_owned() noexcept {
    degrees_ = owned_degrees_;
    skip_ = owned_skip_;
    stream_ = owned_stream_;
  }

 public:
  // Spans point into the owned vectors: moves must re-anchor them.
  ZCsr(const ZCsr& o)
      : n_(o.n_), arcs_(o.arcs_), loops_(o.loops_),
        total_weight_(o.total_weight_), mode_(o.mode_),
        max_degree_(o.max_degree_), degrees_(o.degrees_), skip_(o.skip_),
        stream_(o.stream_), owned_degrees_(o.owned_degrees_),
        owned_skip_(o.owned_skip_), owned_stream_(o.owned_stream_) {
    if (!o.owned_stream_.empty() || !o.owned_degrees_.empty()) adopt_owned();
  }
  ZCsr& operator=(const ZCsr& o) {
    if (this != &o) { ZCsr tmp(o); *this = std::move(tmp); }
    return *this;
  }
  ZCsr(ZCsr&& o) noexcept
      : n_(o.n_), arcs_(o.arcs_), loops_(o.loops_),
        total_weight_(o.total_weight_), mode_(o.mode_),
        max_degree_(o.max_degree_), degrees_(o.degrees_), skip_(o.skip_),
        stream_(o.stream_), owned_degrees_(std::move(o.owned_degrees_)),
        owned_skip_(std::move(o.owned_skip_)),
        owned_stream_(std::move(o.owned_stream_)) {
    if (!owned_stream_.empty() || !owned_degrees_.empty()) adopt_owned();
  }
  ZCsr& operator=(ZCsr&& o) noexcept {
    n_ = o.n_; arcs_ = o.arcs_; loops_ = o.loops_;
    total_weight_ = o.total_weight_; mode_ = o.mode_;
    max_degree_ = o.max_degree_;
    degrees_ = o.degrees_; skip_ = o.skip_; stream_ = o.stream_;
    owned_degrees_ = std::move(o.owned_degrees_);
    owned_skip_ = std::move(o.owned_skip_);
    owned_stream_ = std::move(o.owned_stream_);
    if (!owned_stream_.empty() || !owned_degrees_.empty()) adopt_owned();
    return *this;
  }
  ~ZCsr() = default;
};

}  // namespace glouvain::zg
