// On-disk container for ZCsr — the out-of-core half of the zg layer.
//
// File layout ("GLZG", version 1, little-endian, sections 8-byte
// aligned so an mmap of the file serves the ZCsr spans directly):
//
//   [Header, 64 bytes]
//     magic          char[4]  "GLZG"
//     version        u32      1
//     n              u64      vertices
//     arcs           u64      directed arc count
//     loops          u64      self-loop count
//     total_weight   f64      the cached "2m" (bitwise)
//     weight_mode    u8       zg::WeightMode
//     reserved       u8[3]
//     skip_interval  u32      rows per skip-index sample
//     skip_count     u64      skip-index entries
//     stream_bytes   u64      adjacency/weight stream length
//   [skip    u64[skip_count]]   absolute stream offsets
//   [degrees u32[n]]            per-row degrees
//   [pad to 8]
//   [stream  u8[stream_bytes]]  the varint row stream
//
// save()/load() move whole containers through buffered streams;
// MappedGraph::open() maps the file and hands out a zero-copy ZCsr
// view (madvise-sequential prefetch), falling back to a buffered read
// on platforms without <sys/mman.h>.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "zg/zcsr.hpp"

namespace glouvain::zg {

/// Write `z` as a GLZG container. Overwrites `path`.
util::Status save(const ZCsr& z, const std::string& path);

/// Read a GLZG container fully into memory (owning ZCsr). Malformed
/// headers and section-length mismatches come back as
/// kInvalidArgument; filesystem trouble as kNotFound/kIoError.
util::StatusOr<ZCsr> load(const std::string& path);

/// Memory-mapped GLZG container: the returned ZCsr's spans point
/// straight into the mapping, so the adjacency stream pages in on
/// demand instead of occupying anonymous memory. Move-only; the
/// mapping lives until destruction and must outlive the view.
class MappedGraph {
 public:
  static util::StatusOr<MappedGraph> open(const std::string& path);

  MappedGraph(MappedGraph&& o) noexcept { *this = std::move(o); }
  MappedGraph& operator=(MappedGraph&& o) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;
  ~MappedGraph();

  const ZCsr& zcsr() const noexcept { return view_; }
  /// False when the platform fallback (buffered read) was used.
  bool mapped() const noexcept { return addr_ != nullptr; }
  std::size_t file_bytes() const noexcept { return len_; }

 private:
  MappedGraph() = default;

  ZCsr view_;
  void* addr_ = nullptr;  ///< mmap base (nullptr => fallback_ owns)
  std::size_t len_ = 0;
  int fd_ = -1;
  std::vector<std::uint8_t> fallback_;
};

}  // namespace glouvain::zg
