// Byte-aligned LEB128 varints plus zigzag signed mapping — the codec
// underneath zg::ZCsr's delta-encoded adjacency streams. Values are
// emitted little-endian, 7 payload bits per byte, high bit = continue;
// a uint64 therefore takes at most 10 bytes. Header-only and branch-
// light so decode cursors inline into the kernels that iterate rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace glouvain::zg {

inline constexpr std::size_t kMaxVarintBytes = 10;

/// Zigzag-map a signed delta onto an unsigned varint-friendly value:
/// 0,-1,1,-2,2,... -> 0,1,2,3,4,... Small magnitudes of either sign
/// stay small, so near-sorted adjacency deltas encode in one byte.
inline std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t u) noexcept {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

/// Append `value` to `out` as LEB128; returns the number of bytes
/// written (1..kMaxVarintBytes).
inline std::size_t varint_append(std::vector<std::uint8_t>& out,
                                 std::uint64_t value) {
  std::size_t n = 0;
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
    ++n;
  }
  out.push_back(static_cast<std::uint8_t>(value));
  return n + 1;
}

/// Decode one varint starting at `p`; advances `p` past it. The caller
/// guarantees the stream is well formed (encoded by varint_append), so
/// no bounds parameter: corrupt streams are caught at container load
/// by the section checksums/lengths, not per-read.
inline std::uint64_t varint_read(const std::uint8_t*& p) noexcept {
  std::uint64_t value = *p & 0x7F;
  if ((*p++ & 0x80) == 0) return value;  // 1-byte fast path
  unsigned shift = 7;
  for (;;) {
    const std::uint8_t byte = *p++;
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

/// Number of bytes varint_append would emit for `value`.
inline std::size_t varint_size(std::uint64_t value) noexcept {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace glouvain::zg
