#include "zg/zcsr.hpp"

#include <cmath>

namespace glouvain::zg {

namespace {

/// 2^53: the largest magnitude at which every integer is exactly
/// representable as a double, i.e. the ceiling for the lossless
/// uint64 <-> double round-trip of WeightMode::kIntegralVarint.
constexpr double kMaxExactIntegral = 9007199254740992.0;

WeightMode pick_weight_mode(std::span<const graph::Weight> weights) {
  WeightMode mode = WeightMode::kUniform;
  for (const graph::Weight w : weights) {
    if (w == 1.0) continue;
    if (w >= 0.0 && w <= kMaxExactIntegral &&
        static_cast<double>(static_cast<std::uint64_t>(w)) == w) {
      mode = WeightMode::kIntegralVarint;
      continue;
    }
    return WeightMode::kRaw;
  }
  return mode;
}

}  // namespace

ZCsr ZCsr::encode(const graph::Csr& g) {
  ZCsr z;
  z.n_ = g.num_vertices();
  z.arcs_ = g.num_arcs();
  z.loops_ = g.num_loops();
  z.total_weight_ = g.total_weight();
  z.mode_ = pick_weight_mode(g.edge_weights());

  const graph::VertexId n = z.n_;
  z.owned_degrees_.resize(n);
  z.owned_skip_.resize(n == 0 ? 0 : (n - 1) / kSkipInterval + 1);
  // Unweighted graphs land near 1 byte/arc; leave headroom for the
  // row prefixes and first-neighbour deltas.
  z.owned_stream_.reserve(static_cast<std::size_t>(z.arcs_) +
                          static_cast<std::size_t>(n) * 2);

  std::vector<std::uint8_t> row;
  for (graph::VertexId v = 0; v < n; ++v) {
    if (v % kSkipInterval == 0) {
      z.owned_skip_[v / kSkipInterval] = z.owned_stream_.size();
    }
    const auto adj = g.neighbors(v);
    const auto w = g.weights(v);
    const auto deg = static_cast<std::uint32_t>(adj.size());
    z.owned_degrees_[v] = deg;
    if (deg > z.max_degree_) z.max_degree_ = deg;

    row.clear();
    if (deg > 0) {
      varint_append(row, zigzag_encode(static_cast<std::int64_t>(adj[0]) -
                                       static_cast<std::int64_t>(v)));
      for (std::uint32_t i = 1; i < deg; ++i) {
        varint_append(row, zigzag_encode(static_cast<std::int64_t>(adj[i]) -
                                         static_cast<std::int64_t>(adj[i - 1])));
      }
      switch (z.mode_) {
        case WeightMode::kUniform:
          break;
        case WeightMode::kIntegralVarint:
          for (const graph::Weight x : w) {
            varint_append(row, static_cast<std::uint64_t>(x));
          }
          break;
        case WeightMode::kRaw: {
          const std::size_t at = row.size();
          row.resize(at + deg * sizeof(graph::Weight));
          std::memcpy(row.data() + at, w.data(), deg * sizeof(graph::Weight));
          break;
        }
      }
    }
    varint_append(z.owned_stream_, row.size());
    z.owned_stream_.insert(z.owned_stream_.end(), row.begin(), row.end());
  }

  z.adopt_owned();
  return z;
}

ZCsr ZCsr::view(graph::VertexId n, graph::EdgeIdx arcs, graph::EdgeIdx loops,
                graph::Weight total_weight, WeightMode mode,
                std::span<const std::uint32_t> degrees,
                std::span<const std::uint64_t> skip,
                std::span<const std::uint8_t> stream) {
  ZCsr z;
  z.n_ = n;
  z.arcs_ = arcs;
  z.loops_ = loops;
  z.total_weight_ = total_weight;
  z.mode_ = mode;
  z.degrees_ = degrees;
  z.skip_ = skip;
  z.stream_ = stream;
  for (const std::uint32_t d : degrees) {
    if (d > z.max_degree_) z.max_degree_ = d;
  }
  return z;
}

ZCsr ZCsr::own(graph::VertexId n, graph::EdgeIdx arcs, graph::EdgeIdx loops,
               graph::Weight total_weight, WeightMode mode,
               std::vector<std::uint32_t> degrees,
               std::vector<std::uint64_t> skip,
               std::vector<std::uint8_t> stream) {
  ZCsr z;
  z.n_ = n;
  z.arcs_ = arcs;
  z.loops_ = loops;
  z.total_weight_ = total_weight;
  z.mode_ = mode;
  z.owned_degrees_ = std::move(degrees);
  z.owned_skip_ = std::move(skip);
  z.owned_stream_ = std::move(stream);
  z.adopt_owned();
  for (const std::uint32_t d : z.degrees_) {
    if (d > z.max_degree_) z.max_degree_ = d;
  }
  return z;
}

graph::Csr ZCsr::decode_all() const {
  std::vector<graph::EdgeIdx> offsets(static_cast<std::size_t>(n_) + 1);
  offsets[0] = 0;
  for (graph::VertexId v = 0; v < n_; ++v) {
    offsets[v + 1] = offsets[v] + degrees_[v];
  }
  std::vector<graph::VertexId> adj(arcs_);
  std::vector<graph::Weight> weights(arcs_);
  Cursor c = cursor();
  for (graph::VertexId v = 0; v < n_; ++v) {
    c.decode_into(adj.data() + offsets[v], weights.data() + offsets[v]);
  }
  return graph::Csr(std::move(offsets), std::move(adj), std::move(weights));
}

}  // namespace glouvain::zg
