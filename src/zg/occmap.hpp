// Bit-packed-occupancy variant of the task-local community hash table
// (core::LocalCommunityHashMap). Emptiness lives in a separate bitmap
// — one bit per slot, 32 slots per uint32 occupancy word (the Lumen
// HashMapEntry idiom) — instead of a kNull sentinel in the key array.
// Two wins for the memory-bound regime this subsystem targets:
//   * clear() touches cap/32 words instead of cap key slots, so the
//     per-vertex table reset stops rivalling the probe work itself on
//     low-degree vertices;
//   * the key array needs no sentinel, so a future narrower key type
//     keeps its full value range.
// The probe sequence (double hashing over a prime capacity, fastmod
// seeds from util::HashTableParams, conditional-subtract advance) is
// IDENTICAL to BasicCommunityHashMap — same slots visited in the same
// order, so accumulation order and therefore every downstream float
// is bitwise-unchanged when modopt swaps layouts.
//
// Task-local only: a lane group runs inside one OS thread (see the
// atomicity policy note in core/hash_map.hpp), and claim tracking is
// per-caller state. key_at() returns kNull for unoccupied slots, so
// scan loops written against the sentinel layout work unchanged.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

#include "check/check.hpp"
#include "core/hash_map.hpp"
#include "graph/types.hpp"
#include "util/primes.hpp"

namespace glouvain::zg {

class OccCommunityHashMap {
 public:
  static constexpr graph::Community kNull = graph::kInvalidCommunity;

  /// Emptiness lives in the occupancy bitmap; keys of dead slots are
  /// garbage. The vector slot scan masks by occ words accordingly.
  static constexpr bool kOccLayout = true;

  /// Occupancy words needed for a table of `capacity` slots.
  static constexpr std::size_t occ_words(std::size_t capacity) noexcept {
    return (capacity + 31) / 32;
  }

  /// Spans come from the arena like the sentinel table's; `occ` must
  /// hold occ_words(keys.size()) words. `params` must describe
  /// capacity == keys.size() (prime, > 1).
  OccCommunityHashMap(std::span<graph::Community> keys,
                      std::span<graph::Weight> weights,
                      std::span<std::uint32_t> occ,
                      const util::HashTableParams& params) noexcept
      : keys_(keys),
        weights_(weights),
        occ_(occ),
        cap_(params.capacity),
        mod_cap_(params.magic_capacity, params.capacity),
        mod_cap_minus1_(params.magic_capacity_minus1, params.capacity - 1) {
    assert(keys_.size() == weights_.size());
    assert(keys_.size() == params.capacity);
    assert(occ_.size() >= occ_words(keys_.size()));
    assert(params.capacity > 1);
  }

  /// Reset: zero the occupancy words only — cap/32 stores versus the
  /// sentinel layout's cap. Keys/weights become logically
  /// uninitialized; the note_init calls tell the race checker so
  /// (they compile to nothing outside GLOUVAIN_SIMTCHECK builds).
  void clear() noexcept {
    const std::size_t words = occ_words(cap_);
    for (std::size_t i = 0; i < words; ++i) {
      check::note_init(&occ_[i]);
      occ_[i] = 0;
    }
    for (std::uint32_t i = 0; i < cap_; ++i) {
      check::note_init(&keys_[i]);
      check::note_init(&weights_[i]);
    }
  }

  std::size_t capacity() const noexcept { return cap_; }

  std::size_t insert_add(graph::Community c, graph::Weight w) noexcept {
    bool claimed;
    return insert_add_claim(c, w, claimed);
  }

  /// Same contract as the sentinel table's insert_add_claim: accumulate
  /// w onto c's slot, reporting whether this call claimed a fresh slot.
  std::size_t insert_add_claim(graph::Community c, graph::Weight w,
                               bool& claimed) noexcept {
    claimed = false;
    std::uint32_t pos = mod_cap_.mod(c);
    const std::uint32_t step = 1 + mod_cap_minus1_.mod(c);
    for (;;) {
      check::note_plain_read(&occ_[pos >> 5]);
      if ((occ_[pos >> 5] & (1u << (pos & 31))) == 0) {
        check::note_plain_claim(&keys_[pos]);
        check::note_plain_write(&occ_[pos >> 5]);
        occ_[pos >> 5] |= 1u << (pos & 31);
        keys_[pos] = c;
        check::note_plain_write(&weights_[pos]);
        weights_[pos] = w;
        claimed = true;
        return pos;
      }
      check::note_plain_read(&keys_[pos]);
      if (keys_[pos] == c) {
        check::note_plain_write(&weights_[pos]);
        weights_[pos] += w;
        return pos;
      }
      pos += step;
      if (pos >= cap_) pos -= cap_;
    }
  }

  graph::Weight lookup(graph::Community c) const noexcept {
    std::uint32_t pos = mod_cap_.mod(c);
    const std::uint32_t step = 1 + mod_cap_minus1_.mod(c);
    for (std::uint32_t it = 0; it < cap_; ++it) {
      check::note_plain_read(&occ_[pos >> 5]);
      if ((occ_[pos >> 5] & (1u << (pos & 31))) == 0) return 0;
      check::note_plain_read(&keys_[pos]);
      if (keys_[pos] == c) return weights_[pos];
      pos += step;
      if (pos >= cap_) pos -= cap_;
    }
    return 0;
  }

  /// kNull for unoccupied slots — sentinel-compatible scans need no
  /// layout awareness.
  graph::Community key_at(std::size_t pos) const noexcept {
    check::note_plain_read(&occ_[pos >> 5]);
    if ((occ_[pos >> 5] & (1u << (pos & 31))) == 0) return kNull;
    check::note_plain_read(&keys_[pos]);
    return keys_[pos];
  }
  graph::Weight weight_at(std::size_t pos) const noexcept {
    check::note_plain_read(&weights_[pos]);
    return weights_[pos];
  }
  bool occupied(std::size_t pos) const noexcept {
    check::note_plain_read(&occ_[pos >> 5]);
    return (occ_[pos >> 5] & (1u << (pos & 31))) != 0;
  }

  /// Raw slot arrays for the vector scan — see the matching accessors
  /// on core::BasicCommunityHashMap. Dead slots hold garbage keys; the
  /// consumer must mask every lane by occ_data().
  const graph::Community* keys_data() const noexcept { return keys_.data(); }
  const graph::Weight* weights_data() const noexcept {
    return weights_.data();
  }
  const std::uint32_t* occ_data() const noexcept { return occ_.data(); }

 private:
  std::span<graph::Community> keys_;
  std::span<graph::Weight> weights_;
  std::span<std::uint32_t> occ_;
  std::uint32_t cap_;
  core::FastMod mod_cap_;
  core::FastMod mod_cap_minus1_;
};

}  // namespace glouvain::zg
