// Work binning (Algorithm 1 line 5 / Algorithm 3 line 21): group items
// (vertices or communities) by a work key (degree or community degree
// sum) into the buckets of a BucketScheme, using the Thrust-style
// partition primitive, exactly as the paper's host code does.
#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "graph/types.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::core {

struct Binned {
  /// Items reordered so each bucket is contiguous.
  std::vector<graph::VertexId> order;
  /// num_buckets + 1 offsets into `order`.
  std::vector<std::size_t> begin;

  std::span<const graph::VertexId> bucket(std::size_t b) const noexcept {
    return {order.data() + begin[b], begin[b + 1] - begin[b]};
  }
};

/// Bin items [0, num_items) by key(item) into scheme's buckets via
/// repeated stable partition. Items with key 0 land in bucket 0 (and
/// the kernels skip them). The last bucket (the "global memory" one)
/// is additionally sorted by DESCENDING key, mirroring the paper's
/// sort-then-interleave load balancing for the heaviest vertices.
template <typename KeyFn>
Binned bin_by_key(std::size_t num_items, const BucketScheme& scheme, KeyFn&& key,
                  simt::ThreadPool& pool = simt::ThreadPool::global());

}  // namespace glouvain::core

#include "core/buckets_impl.hpp"
