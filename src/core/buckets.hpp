// Work binning (Algorithm 1 line 5 / Algorithm 3 line 21): group items
// (vertices or communities) by a work key (degree or community degree
// sum) into the buckets of a BucketScheme. The paper's host code calls
// Thrust partition() once per bucket; bin_by_key_into instead runs ONE
// stable counting sort over bucket ids (O(n + B) rather than O(B * n))
// with identical output, and reuses the caller's Binned storage so
// steady-state binning allocates nothing.
#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "graph/types.hpp"
#include "prim/scratch.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::core {

struct Binned {
  /// Items reordered so each bucket is contiguous.
  std::vector<graph::VertexId> order;
  /// num_buckets + 1 offsets into `order`.
  std::vector<std::size_t> begin;

  std::span<const graph::VertexId> bucket(std::size_t b) const noexcept {
    return {order.data() + begin[b], begin[b + 1] - begin[b]};
  }
};

/// Bin items [0, num_items) by key(item) into scheme's buckets with a
/// stable counting sort, reusing `out`'s storage (grow-only) and
/// drawing temporaries from `scratch`. Items with key 0 land in bucket
/// 0 (and the kernels skip them). The last bucket (the "global memory"
/// one) is additionally sorted by DESCENDING key, mirroring the
/// paper's sort-then-interleave load balancing for the heaviest
/// vertices.
template <typename KeyFn>
void bin_by_key_into(std::size_t num_items, const BucketScheme& scheme,
                     KeyFn&& key, Binned& out, prim::Scratch& scratch,
                     simt::ThreadPool& pool = simt::ThreadPool::global());

/// Self-allocating convenience wrapper (one-off callers, tests).
template <typename KeyFn>
Binned bin_by_key(std::size_t num_items, const BucketScheme& scheme, KeyFn&& key,
                  simt::ThreadPool& pool = simt::ThreadPool::global());

}  // namespace glouvain::core

#include "core/buckets_impl.hpp"
