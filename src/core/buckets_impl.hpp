// Implementation of bin_by_key (included from buckets.hpp).
#pragma once

#include "prim/partition.hpp"
#include "prim/sort.hpp"
#include "prim/transform.hpp"

namespace glouvain::core {

template <typename KeyFn>
Binned bin_by_key(std::size_t num_items, const BucketScheme& scheme, KeyFn&& key,
                  simt::ThreadPool& pool) {
  Binned binned;
  binned.order.resize(num_items);
  prim::iota(std::span<graph::VertexId>(binned.order), graph::VertexId{0}, pool);
  binned.begin.assign(scheme.num_buckets() + 1, 0);

  // Repeated stable partition of the remaining tail, one cut per bound
  // (the paper calls Thrust partition() once per bucket).
  std::vector<graph::VertexId> scratch(num_items);
  std::size_t start = 0;
  for (std::size_t b = 0; b + 1 < scheme.num_buckets(); ++b) {
    const graph::EdgeIdx bound = scheme.bounds[b];
    std::span<const graph::VertexId> tail(binned.order.data() + start,
                                          num_items - start);
    std::span<graph::VertexId> out(scratch.data() + start, num_items - start);
    const std::size_t in_bucket = prim::stable_partition_copy(
        tail, out,
        [&](graph::VertexId item) { return key(item) <= bound; }, pool);
    pool.parallel_for(tail.size(), [&](std::size_t i, unsigned) {
      binned.order[start + i] = scratch[start + i];
    });
    binned.begin[b + 1] = start + in_bucket;
    start += in_bucket;
  }
  binned.begin[scheme.num_buckets()] = num_items;

  // Heaviest bucket: sort by descending key so dynamic dispatch picks
  // the biggest jobs first (interleaved-by-degree in the paper).
  const std::size_t last = scheme.num_buckets() - 1;
  std::span<graph::VertexId> heavy(binned.order.data() + binned.begin[last],
                                   binned.begin[last + 1] - binned.begin[last]);
  prim::sort(heavy,
             [&](graph::VertexId a, graph::VertexId b) {
               const auto ka = key(a), kb = key(b);
               return ka != kb ? ka > kb : a < b;
             },
             pool);
  return binned;
}

}  // namespace glouvain::core
