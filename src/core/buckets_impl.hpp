// Implementation of bin_by_key / bin_by_key_into (included from
// buckets.hpp).
#pragma once

#include "check/check.hpp"
#include "prim/bucket.hpp"
#include "prim/sort.hpp"

namespace glouvain::core {

template <typename KeyFn>
void bin_by_key_into(std::size_t num_items, const BucketScheme& scheme,
                     KeyFn&& key, Binned& out, prim::Scratch& scratch,
                     simt::ThreadPool& pool) {
  const std::size_t num_buckets = scheme.num_buckets();
  out.order.resize(num_items);
  out.begin.resize(num_buckets + 1);

  // One stable counting pass over bucket ids replaces the paper's
  // num_buckets Thrust partition() calls; the output order (bucket by
  // bucket, ascending item id inside each) is identical.
  prim::bucket_sort_index(
      num_items, num_buckets,
      [&](std::size_t i) {
        return scheme.bucket_of(key(static_cast<graph::VertexId>(i)));
      },
      std::span<graph::VertexId>(out.order),
      std::span<std::size_t>(out.begin), scratch, pool);
  // Partition contract: binning must place every item in exactly one
  // bucket — a dropped or doubled item desynchronizes the kernel grids.
  check::contract(out.begin[num_buckets] == num_items,
                  "binning lost or duplicated items");

  // Heaviest bucket: sort by descending key so dynamic dispatch picks
  // the biggest jobs first (interleaved-by-degree in the paper).
  const std::size_t last = num_buckets - 1;
  std::span<graph::VertexId> heavy(out.order.data() + out.begin[last],
                                   out.begin[last + 1] - out.begin[last]);
  prim::sort(heavy,
             [&](graph::VertexId a, graph::VertexId b) {
               const auto ka = key(a), kb = key(b);
               return ka != kb ? ka > kb : a < b;
             },
             scratch, pool);
}

template <typename KeyFn>
Binned bin_by_key(std::size_t num_items, const BucketScheme& scheme, KeyFn&& key,
                  simt::ThreadPool& pool) {
  Binned binned;
  prim::Scratch scratch;
  bin_by_key_into(num_items, scheme, std::forward<KeyFn>(key), binned, scratch,
                  pool);
  return binned;
}

}  // namespace glouvain::core
