// Types shared by every Louvain implementation in the library (the
// sequential baseline, the shared-memory PLM comparator, and the
// GPU-style core). Header-only so lower layers can include it without
// a link dependency on the core library.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "metrics/dendrogram.hpp"

namespace glouvain {

/// The paper's adaptive threshold schedule (§5): a coarse threshold
/// t_bin while the (current, contracted) graph is larger than
/// `adaptive_limit` vertices, then the fine t_final. The same schedule
/// is reused by the "adaptive sequential" baseline of Figure 4.
struct ThresholdSchedule {
  double t_bin = 1e-2;
  double t_final = 1e-6;
  graph::VertexId adaptive_limit = 100'000;
  /// false = always use t_final (the original sequential behaviour).
  bool adaptive = true;

  double threshold_for(graph::VertexId current_vertices) const noexcept {
    return (adaptive && current_vertices > adaptive_limit) ? t_bin : t_final;
  }
};

/// Per-level (per-stage, in the paper's wording) instrumentation used
/// by the Figure 5/6 breakdown benches.
struct LevelReport {
  graph::VertexId vertices = 0;     ///< vertices entering this level
  graph::EdgeIdx arcs = 0;          ///< directed arcs entering this level
  int iterations = 0;               ///< modularity-optimization sweeps
  double modularity_before = 0;
  double modularity_after = 0;
  double optimize_seconds = 0;      ///< phase 1 time
  double aggregate_seconds = 0;     ///< phase 2 time
};

struct LouvainResult {
  /// Final community of every ORIGINAL vertex (dense labels).
  std::vector<graph::Community> community;
  double modularity = 0;
  std::vector<LevelReport> levels;
  /// Full multi-level hierarchy: dendrogram.community_at_level(l) gives
  /// the clustering after l+1 levels; the last level equals
  /// `community`. (The paper's GPU code drops this for memory; see
  /// metrics/dendrogram.hpp.)
  metrics::Dendrogram dendrogram;
  double total_seconds = 0;
  /// Arcs processed in the first optimization sweep of level 0 divided
  /// by the time of that sweep — the TEPS figure the paper reports
  /// against the Blue Gene/Q implementation.
  double first_phase_teps = 0;
};

}  // namespace glouvain
