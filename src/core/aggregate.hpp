// Aggregation phase (Algorithm 3 + mergeCommunity) on the software
// SIMT device: contracts each community to one vertex of a new graph.
#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/rows.hpp"
#include "graph/csr.hpp"
#include "simt/device.hpp"

namespace glouvain::obs {
class Recorder;
}

namespace glouvain::core {

class Workspace;

struct AggregationResult {
  graph::Csr contracted;
  /// old community label -> new vertex id (kInvalidVertex for labels
  /// with no members). Dense ids follow increasing old label, matching
  /// the newID prefix sum of Algorithm 3.
  std::vector<graph::VertexId> new_id;
  graph::VertexId num_communities = 0;
};

/// community[v] must be a label < graph.num_vertices() for every v.
/// `recorder` (optional) receives the "aggregate" span tree — community
/// sizing, numbering, member ordering, binning, per-bucket merge
/// kernels, compaction — plus a bucket-occupancy counter.
AggregationResult aggregate(simt::Device& device, const graph::Csr& graph,
                            const Config& config,
                            std::span<const graph::Community> community,
                            obs::Recorder* recorder = nullptr);

/// Allocation-free entry point: per-phase arrays come from `ws`'s slot
/// buffers, the contracted CSR's arrays from its recycling pool (feed
/// retired graphs back via Workspace::recycle). The overload above is
/// a thin wrapper over a throwaway Workspace.
AggregationResult aggregate(simt::Device& device, const graph::Csr& graph,
                            const Config& config,
                            std::span<const graph::Community> community,
                            Workspace& ws, obs::Recorder* recorder = nullptr);

/// Compressed-storage aggregation: member rows are decoded per worker
/// instead of read from raw arrays; the contracted graph comes out as
/// a plain Csr either way (later levels are small enough to run
/// uncompressed). Results are bitwise-identical to the plain overload.
AggregationResult aggregate(simt::Device& device, ZRows& rows,
                            const Config& config,
                            std::span<const graph::Community> community,
                            Workspace& ws, obs::Recorder* recorder = nullptr);

}  // namespace glouvain::core
