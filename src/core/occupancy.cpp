#include "core/occupancy.hpp"

namespace glouvain::core {

OccupancyReport analyze_occupancy(const graph::Csr& graph,
                                  const BucketScheme& scheme) {
  OccupancyReport report;
  report.buckets.resize(scheme.num_buckets());
  for (std::size_t b = 0; b < scheme.num_buckets(); ++b) {
    report.buckets[b].bucket = b;
    report.buckets[b].lanes = scheme.lanes[b];
  }

  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v) {
    const graph::EdgeIdx d = graph.degree(v);
    if (d == 0) continue;
    auto& bucket = report.buckets[scheme.bucket_of(d)];
    const graph::EdgeIdx rounds = (d + bucket.lanes - 1) / bucket.lanes;
    bucket.vertices += 1;
    bucket.edges += d;
    bucket.lane_slots += rounds * bucket.lanes;
  }

  graph::EdgeIdx total_edges = 0, total_slots = 0;
  for (auto& bucket : report.buckets) {
    if (bucket.lane_slots) {
      bucket.occupancy = static_cast<double>(bucket.edges) /
                         static_cast<double>(bucket.lane_slots);
    }
    total_edges += bucket.edges;
    total_slots += bucket.lane_slots;
  }
  report.overall = total_slots
                       ? static_cast<double>(total_edges) /
                             static_cast<double>(total_slots)
                       : 0;
  return report;
}

}  // namespace glouvain::core
