// Device workspace arena — the host-side analogue of the paper's
// "allocate every device buffer once with cudaMalloc, reuse it for the
// whole run" discipline. The original CUDA code sizes its buffers for
// the level-0 graph and never calls cudaMalloc/cudaFree inside the
// modularity-optimization or aggregation loops; a Workspace gives the
// software-SIMT port the same property on the heap.
//
// Three kinds of storage, all grow-only:
//
//   * SLOT BUFFERS — named per-phase arrays (binning orders, atomic
//     histograms, scatter cursors, per-worker partials). Each slot is
//     one byte buffer that grows to its high-water mark on first use
//     and is handed out as an uninitialized typed span afterwards.
//   * SCRATCH     — a prim::Scratch bump arena threaded through every
//     prim call (scan partials, merge buffers, counting-sort
//     histograms) and through simt kernel launches' host-side needs.
//   * VECTOR POOLS — recycled std::vector storage for arrays whose
//     OWNERSHIP leaves the hot loop (the contracted CSR's three
//     arrays, renumbering maps): take<T>() re-uses the capacity of a
//     previously recycled vector, recycle(Csr&&) feeds a retired
//     level's graph back into the pools.
//
// A Workspace is single-threaded (driver thread only) and owned by
// whoever owns the device: core::Louvain keeps one across levels,
// sweeps and detect() calls, which means svc's pooled device workers
// and stream::Session's warm detector reuse it across jobs and epochs
// for free. Counters (requests, bytes, arena hits vs heap fallbacks,
// footprint high-water) feed the obs "ws/*" counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/buckets.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "prim/scratch.hpp"

namespace glouvain::obs {
class Recorder;
}

namespace glouvain::core {

class Workspace {
 public:
  /// Named persistent buffers. One enumerator per distinct array the
  /// hot path needs; a slot's byte size only ever grows.
  enum class Slot : std::size_t {
    // --- modularity optimization (core/modopt.cpp) ---
    kModoptActive,       ///< active-vertex list
    kModoptOrder,        ///< binned processing order (copy of Binned)
    kModoptSubBegin,     ///< sub-round boundaries per bucket
    kModoptGainPartial,  ///< per-worker gain sums (commit)
    kModoptMovedPartial, ///< per-worker moved counts (commit)
    kModoptInPartial,    ///< per-worker internal-weight sums (modularity)
    kModoptTotPartial,   ///< per-worker tot^2 sums (modularity)
    kModoptVecStats,     ///< per-worker vector-lane occupancy counters
    // --- aggregation (core/aggregate.cpp) ---
    kAggComSize,         ///< members per community (atomic histogram)
    kAggComDegree,       ///< degree sum per community (atomic histogram)
    kAggFlags,           ///< 0/1 community-survives flags
    kAggEdgePos,         ///< scan of community degree sums
    kAggComSizeWide,     ///< widened member counts for the scan
    kAggVertexStart,     ///< scan of member counts
    kAggCursor,          ///< atomic scatter cursors
    kAggCom,             ///< members grouped by community
    kAggTmpAdj,          ///< merged-row scratch adjacency
    kAggTmpW,            ///< merged-row scratch weights
    kAggMergedDegree,    ///< compacted row widths
    kAggNewDegree,       ///< row widths under new ids
    // --- level driver (core/louvain.cpp) ---
    kFoldDense,          ///< per-level dense mapping before push_level
    // --- stream CSR rebuild (stream/apply.cpp) ---
    kStreamArcs,         ///< delta arc records
    kStreamRanges,       ///< per-vertex arc ranges
    kStreamNewDegree,    ///< rebuilt row widths
    kStreamTouchSlot,    ///< touched-vertex slot map
    kCount
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// The slot's buffer as `count` elements of trivially-destructible T,
  /// UNINITIALIZED beyond what the previous user left there. Grows the
  /// underlying byte buffer only when `count` exceeds every previous
  /// request for this slot.
  template <typename T>
  std::span<T> buffer(Slot slot, std::size_t count) {
    auto& bytes = slots_[static_cast<std::size_t>(slot)];
    const std::size_t need = count * sizeof(T);
    ++counters_.requests;
    counters_.bytes_requested += need;
    if (need > bytes.size()) {
      ++counters_.heap_grows;
      bytes.resize(need);
    } else {
      ++counters_.hits;
    }
    return {reinterpret_cast<T*>(bytes.data()), count};
  }

  /// The bump arena threaded through prim calls.
  prim::Scratch& scratch() noexcept { return scratch_; }

  /// Per-sub-round commit class lists (modopt). Kept alive so each
  /// class's capacity survives across sweeps, levels and jobs.
  std::vector<std::vector<graph::VertexId>>& class_lists() {
    return class_lists_;
  }

  /// Reusable binning results (order + bucket offsets), one per phase
  /// so modopt and aggregation never fight over capacity.
  Binned& modopt_binned() noexcept { return binned_[0]; }
  Binned& aggregate_binned() noexcept { return binned_[1]; }

  /// Take a vector with at least `count` elements from the recycling
  /// pool, or allocate one. Best fit: the smallest pooled capacity
  /// that satisfies `count` (so a small request never wastes a big
  /// vector another request of this cycle needs), else the largest one
  /// grows. The contents are unspecified beyond value-initialization
  /// of grown tails.
  template <typename T>
  std::vector<T> take(std::size_t count) {
    auto& pool = pool_for<T>();
    ++counters_.requests;
    counters_.bytes_requested += count * sizeof(T);
    std::vector<T> v;
    if (!pool.empty()) {
      std::size_t pick = 0;
      for (std::size_t i = 1; i < pool.size(); ++i) {
        const std::size_t ci = pool[i].capacity();
        const std::size_t cp = pool[pick].capacity();
        const bool i_fits = ci >= count;
        const bool p_fits = cp >= count;
        if (i_fits ? (!p_fits || ci < cp) : (!p_fits && ci > cp)) pick = i;
      }
      v = std::move(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (v.capacity() >= count) {
      ++counters_.hits;
    } else {
      ++counters_.heap_grows;
    }
    v.resize(count);
    return v;
  }

  /// Return a vector's capacity to the pool.
  template <typename T>
  void put(std::vector<T>&& v) {
    if (v.capacity() == 0) return;
    v.clear();
    pool_for<T>().push_back(std::move(v));
  }

  /// Feed a retired graph's arrays back into the pools.
  void recycle(graph::Csr&& csr) {
    auto r = std::move(csr).release();
    put(std::move(r.offsets));
    put(std::move(r.adj));
    put(std::move(r.weights));
  }

  /// Merged slot + scratch counters.
  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t bytes_requested = 0;
    std::uint64_t hits = 0;        ///< served from existing capacity
    std::uint64_t heap_grows = 0;  ///< had to touch the heap
  };
  Counters counters() const noexcept {
    const auto& s = scratch_.counters();
    return {counters_.requests + s.requests,
            counters_.bytes_requested + s.bytes_requested,
            counters_.hits + s.hits, counters_.heap_grows + s.heap_grows};
  }

  /// Current footprint: slot bytes + scratch chunks + pooled
  /// capacities. Slots and scratch are grow-only, so outside of pool
  /// churn this is also the high-water mark.
  std::size_t held_bytes() const noexcept {
    std::size_t total = scratch_.held_bytes();
    for (const auto& s : slots_) total += s.size();
    for (const auto& v : pool_u32_) total += v.capacity() * sizeof(std::uint32_t);
    for (const auto& v : pool_u64_) total += v.capacity() * sizeof(std::uint64_t);
    for (const auto& v : pool_f64_) total += v.capacity() * sizeof(double);
    for (const auto& c : class_lists_) {
      total += c.capacity() * sizeof(graph::VertexId);
    }
    return total;
  }

  /// Emit "<phase>/ws_*" counters (deltas vs `since`, footprint as a
  /// max) at the recorder's current level. No-op when rec is null.
  void emit(obs::Recorder* rec, std::string_view phase,
            const Counters& since) const;

 private:
  template <typename T>
  std::vector<std::vector<T>>& pool_for() {
    static_assert(sizeof(T) == 4 || sizeof(T) == 8,
                  "no recycling pool for this element type");
    if constexpr (sizeof(T) == 4) {
      static_assert(std::is_same_v<T, graph::VertexId>,
                    "4-byte pool holds VertexId/Community vectors");
      return pool_u32_;
    } else if constexpr (std::is_same_v<T, double>) {
      return pool_f64_;
    } else {
      static_assert(std::is_same_v<T, graph::EdgeIdx>,
                    "8-byte pool holds EdgeIdx vectors");
      return pool_u64_;
    }
  }

  std::vector<unsigned char> slots_[static_cast<std::size_t>(Slot::kCount)];
  prim::Scratch scratch_;
  Binned binned_[2];
  std::vector<std::vector<graph::VertexId>> class_lists_;
  std::vector<std::vector<std::uint32_t>> pool_u32_;
  std::vector<std::vector<std::uint64_t>> pool_u64_;
  std::vector<std::vector<double>> pool_f64_;
  Counters counters_;
};

}  // namespace glouvain::core
