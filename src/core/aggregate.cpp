#include "core/aggregate.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <string_view>

#include "check/check.hpp"
#include "core/buckets.hpp"
#include "core/hash_map.hpp"
#include "core/rows.hpp"
#include "core/workspace.hpp"
#include "obs/recorder.hpp"
#include "prim/scan.hpp"
#include "simt/atomics.hpp"
#include "simt/kernel_ops.hpp"
#include "simt/lane_group.hpp"
#include "simt/lane_vec.hpp"
#include "util/primes.hpp"

namespace glouvain::core {

namespace {

using graph::Community;
using graph::Csr;
using graph::EdgeIdx;
using graph::VertexId;
using graph::Weight;

template <typename Rows>
AggregationResult aggregate_impl(simt::Device& device, Rows& rows,
                                 const Config& config,
                                 std::span<const Community> community,
                                 Workspace& ws, obs::Recorder* rec) {
  check::WorkspaceGuard ws_guard(&ws);
  const VertexId n = rows.num_vertices();
  auto& pool = device.pool();
  const bool vector_backend =
      device.backend() == simt::Backend::kVector && !check::enabled();
  obs::Span phase_span(rec, "aggregate");
  const Workspace::Counters ws_since = ws.counters();
  using Slot = Workspace::Slot;

  // --- Task (i): size and degree bound of every community
  // (Algorithm 3 lines 2-6, atomic histograms).
  const std::size_t sizes_span = rec ? rec->begin_span("aggregate/sizes") : 0;
  auto com_size = ws.buffer<VertexId>(Slot::kAggComSize, n);
  auto com_degree = ws.buffer<EdgeIdx>(Slot::kAggComDegree, n);
  device.for_each(n, [&](std::size_t c) {
    com_size[c] = 0;
    com_degree[c] = 0;
  });
  device.for_each(n, [&](std::size_t v) {
    const Community c = community[v];
    simt::atomic_add(com_size[c], VertexId{1});
    simt::atomic_add(com_degree[c],
                     EdgeIdx{rows.degree(static_cast<VertexId>(v))});
  });
  if (rec) rec->end_span(sizes_span);

  // --- Task (ii): consecutive numbering of non-empty communities
  // (lines 7-12: flag + prefix sum). new_id leaves with the result, so
  // it draws from the vector pool rather than a slot buffer.
  const std::size_t number_span =
      rec ? rec->begin_span("aggregate/numbering") : 0;
  auto flags = ws.buffer<VertexId>(Slot::kAggFlags, n);
  device.for_each(n, [&](std::size_t c) { flags[c] = com_size[c] ? 1 : 0; });
  std::vector<VertexId> new_id = ws.take<VertexId>(n);
  const VertexId num_communities = prim::exclusive_scan(
      std::span<const VertexId>(flags.data(), n), std::span<VertexId>(new_id),
      ws.scratch(), pool);
  device.for_each(n, [&](std::size_t c) {
    if (!com_size[c]) new_id[c] = graph::kInvalidVertex;
  });

  // --- Task (iii): scratch edge storage bounded by the degree sums
  // (lines 13-14). edge_pos[c] is where community c's merged edges go.
  auto edge_pos = ws.buffer<EdgeIdx>(Slot::kAggEdgePos, n);
  const EdgeIdx scratch_arcs = prim::exclusive_scan(
      std::span<const EdgeIdx>(com_degree.data(), n), edge_pos, ws.scratch(),
      pool);
  if (rec) rec->end_span(number_span);

  // --- Task (iv) setup: order vertices by community (lines 15-19).
  const std::size_t order_span = rec ? rec->begin_span("aggregate/order") : 0;
  auto com_size_wide = ws.buffer<EdgeIdx>(Slot::kAggComSizeWide, n);
  device.for_each(n, [&](std::size_t c) { com_size_wide[c] = com_size[c]; });
  auto vertex_start = ws.buffer<EdgeIdx>(Slot::kAggVertexStart, n + 1);
  vertex_start[n] = prim::exclusive_scan(
      std::span<const EdgeIdx>(com_size_wide.data(), n),
      std::span<EdgeIdx>(vertex_start.data(), n), ws.scratch(), pool);
  auto cursor = ws.buffer<EdgeIdx>(Slot::kAggCursor, n);
  device.for_each(n, [&](std::size_t c) { cursor[c] = vertex_start[c]; });
  auto com = ws.buffer<VertexId>(Slot::kAggCom, n);
  device.for_each(n, [&](std::size_t v) {
    const EdgeIdx slot = simt::atomic_add(cursor[community[v]], EdgeIdx{1});
    com[slot] = static_cast<VertexId>(v);
  });
  if (rec) rec->end_span(order_span);

  // --- mergeCommunity over work buckets (lines 20-23). Communities are
  // binned by their degree-sum bound; each task hashes the closed
  // neighbourhood of one community and emits the merged edge list into
  // its scratch region.
  auto tmp_adj = ws.buffer<VertexId>(Slot::kAggTmpAdj, scratch_arcs);
  auto tmp_w = ws.buffer<Weight>(Slot::kAggTmpW, scratch_arcs);
  auto merged_degree = ws.buffer<EdgeIdx>(Slot::kAggMergedDegree, n);
  // A community with members but zero degree never reaches a merge
  // kernel, so its width must already read 0 at compaction.
  device.for_each(n, [&](std::size_t c) { merged_degree[c] = 0; });

  const BucketScheme& scheme = config.aggregation_buckets;
  Binned& binned = ws.aggregate_binned();
  {
    obs::Span span(rec, "aggregate/binning");
    bin_by_key_into(n, scheme, [&](VertexId c) { return com_degree[c]; },
                    binned, ws.scratch(), pool);
  }
  if (rec) {
    for (std::size_t b = 0; b < scheme.num_buckets(); ++b) {
      rec->count("aggregate/bucket_occupancy",
                 static_cast<double>(binned.bucket(b).size()),
                 static_cast<std::int64_t>(b));
    }
  }

  std::vector<std::string> bucket_names;
  if (rec) {
    bucket_names.resize(scheme.num_buckets());
    for (std::size_t b = 0; b < scheme.num_buckets(); ++b) {
      bucket_names[b] = "aggregate/bucket" + std::to_string(b);
    }
  }

  for (std::size_t b = 0; b < scheme.num_buckets(); ++b) {
    auto bucket = binned.bucket(b);
    if (bucket.empty()) continue;
    const unsigned lanes = scheme.lanes[b];
    const bool use_global = b >= scheme.global_from;
    const std::size_t grain = use_global ? 1 : 0;

    check::contract(lanes <= 128, "aggregate: lane group wider than a block");
    obs::Span kernel_span(
        rec, rec ? std::string_view(bucket_names[b]) : std::string_view());
    check::KernelScope kernel_scope("aggregate/bucket", b);
    device.launch(bucket.size(), grain, [&](simt::TaskContext& ctx) {
      const Community c = bucket[ctx.task()];
      if (com_size[c] == 0 || com_degree[c] == 0) return;
      // Binning contract: the merge table is sized from the bucket's
      // degree-sum class.
      if (b < scheme.bounds.size()) {
        check::contract(com_degree[c] <= scheme.bounds[b],
                        "aggregate: community degree exceeds its bucket bound");
      }
      const util::HashTableParams params =
          util::hash_params_for_degree(com_degree[c]);
      const std::size_t cap = params.capacity;
      auto keys = use_global ? ctx.shared().alloc_global<Community>(cap)
                             : ctx.shared().alloc<Community>(cap);
      auto weights = use_global ? ctx.shared().alloc_global<Weight>(cap)
                                : ctx.shared().alloc<Weight>(cap);
      // Task-local: one community is merged entirely inside one OS
      // thread (see hash_map.hpp for the atomicity policy).
      LocalCommunityHashMap table(keys, weights, params);
      table.clear();

      simt::LaneGroup group(lanes);
      // Members processed one after another, all lanes cooperating on
      // each member's edge list (§4.1, aggregation thread assignment).
      // The hashing collective lowers to bulk community gathers on the
      // vector backend (the lane width only shapes the scalar rounds,
      // so one vector group serves every bucket); emission below stays
      // on the scalar group either way.
      for (EdgeIdx m = vertex_start[c]; m < vertex_start[c] + com_size[c]; ++m) {
        const VertexId v = com[m];
        const RowView r = rows.row(v, ctx.worker());
        if (vector_backend) {
          simt::hash_row(simt::VectorLaneGroup<32>{}, r, community.data(),
                         table);
        } else {
          simt::hash_row(group, r, community.data(), table);
        }
      }

      // Emission: each lane counts the slots it owns, a lane prefix sum
      // assigns disjoint output ranges, then lanes copy their entries —
      // the paper's "mark, prefix-sum across threads, move in parallel".
      std::array<EdgeIdx, 128> lane_count{};
      group.strided_for(cap, [&](unsigned lane, std::size_t pos) {
        if (table.occupied(pos)) ++lane_count[lane];
      });
      const EdgeIdx total = group.exclusive_scan(
          std::span<EdgeIdx>(lane_count.data(), lanes));
      std::array<EdgeIdx, 128> lane_cursor = lane_count;
      group.strided_for(cap, [&](unsigned lane, std::size_t pos) {
        if (!table.occupied(pos)) return;
        const EdgeIdx at = edge_pos[c] + lane_cursor[lane]++;
        // Neighbouring community id is rewritten to its new vertex id
        // here, exactly as mergeCommunity does.
        check::note_plain_write(&tmp_adj[at]);
        tmp_adj[at] = new_id[table.key_at(pos)];
        check::note_plain_write(&tmp_w[at]);
        tmp_w[at] = table.weight_at(pos);
      });
      check::note_plain_write(&merged_degree[c]);
      merged_degree[c] = total;
    });
  }

  // --- Compaction (the prefix-sum + move pass after line 23): gather
  // per-new-vertex degrees, scan, and copy rows into their final slots.
  // The three contracted arrays leave with the result, so they come
  // from the recycling pool (a retired level's graph feeds them).
  obs::Span compact_span(rec, "aggregate/compact");
  check::KernelScope compact_scope("aggregate/compact");
  auto new_degree = ws.buffer<EdgeIdx>(Slot::kAggNewDegree, num_communities);
  device.for_each(n, [&](std::size_t c) {
    if (new_id[c] != graph::kInvalidVertex) {
      new_degree[new_id[c]] = merged_degree[c];
    }
  });
  std::vector<EdgeIdx> offsets =
      ws.take<EdgeIdx>(static_cast<std::size_t>(num_communities) + 1);
  offsets[num_communities] = prim::exclusive_scan(
      std::span<const EdgeIdx>(new_degree.data(), num_communities),
      std::span<EdgeIdx>(offsets.data(), num_communities), ws.scratch(), pool);

  std::vector<VertexId> adj =
      ws.take<VertexId>(static_cast<std::size_t>(offsets[num_communities]));
  std::vector<Weight> w =
      ws.take<Weight>(static_cast<std::size_t>(offsets[num_communities]));
  device.launch(n, 0, [&](simt::TaskContext& ctx) {
    const std::size_t c = ctx.task();
    if (new_id[c] == graph::kInvalidVertex) return;
    const EdgeIdx src = edge_pos[c];
    const EdgeIdx dst = offsets[new_id[c]];
    const EdgeIdx deg = merged_degree[c];
    if (deg == 0) return;
    // Library-wide Csr invariant: rows sorted by neighbor id. The hash
    // table emits in slot order, so sort the (short) row here; the row
    // buffer comes from the task's arena (global side: this is staging,
    // not a hash table, so it must not count as a shared-memory spill).
    struct RowEntry {
      VertexId id;
      Weight weight;
    };
    auto row = ctx.shared().alloc_global<RowEntry>(
        static_cast<std::size_t>(deg));
    for (EdgeIdx i = 0; i < deg; ++i) {
      row[i] = {tmp_adj[src + i], tmp_w[src + i]};
    }
    std::sort(row.begin(), row.end(),
              [](const RowEntry& a, const RowEntry& b) { return a.id < b.id; });
    for (EdgeIdx i = 0; i < deg; ++i) {
      check::note_plain_write(&adj[dst + i]);
      adj[dst + i] = row[i].id;
      check::note_plain_write(&w[dst + i]);
      w[dst + i] = row[i].weight;
    }
  });

  AggregationResult result{
      Csr(std::move(offsets), std::move(adj), std::move(w), ws.scratch()),
      std::move(new_id), num_communities};
  ws.emit(rec, "aggregate", ws_since);
  return result;
}

}  // namespace

AggregationResult aggregate(simt::Device& device, const Csr& graph,
                            const Config& config,
                            std::span<const Community> community,
                            obs::Recorder* rec) {
  Workspace ws;
  return aggregate(device, graph, config, community, ws, rec);
}

AggregationResult aggregate(simt::Device& device, const Csr& graph,
                            const Config& config,
                            std::span<const Community> community, Workspace& ws,
                            obs::Recorder* rec) {
  PlainRows rows(graph);
  return aggregate_impl(device, rows, config, community, ws, rec);
}

AggregationResult aggregate(simt::Device& device, ZRows& rows,
                            const Config& config,
                            std::span<const Community> community, Workspace& ws,
                            obs::Recorder* rec) {
  return aggregate_impl(device, rows, config, community, ws, rec);
}

}  // namespace glouvain::core
