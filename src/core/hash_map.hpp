// The per-vertex / per-community hash table of Algorithm 2: open
// addressing with double hashing over a prime-sized table, slot
// claiming on the community-id array, weight accumulation on the
// parallel weight array (lines 4-13 of the paper's pseudocode).
//
// The table is a VIEW over spans handed out by a SharedArena, so the
// same code runs against "shared memory" (buckets 1-6) and "global
// memory" (bucket 7) storage.
//
// Atomicity policy: Atomic = true gives the fully concurrent table
// (CAS slot claiming + atomic accumulate) for storage shared between
// OS threads; it is what the GPU kernels use across warps and is
// stress-tested under real contention in core_hash_test.cpp.
// Atomic = false is the task-local specialization the software-SIMT
// kernels use: a lane group executes inside ONE OS thread, so its
// per-vertex table needs no host atomics — mirroring the GPU, where
// intra-warp shared-memory atomics are close to free while the
// algorithmic structure (probe sequence, claim-then-accumulate) is
// identical.
//
// Probing avoids hardware division: the two double-hash seeds use
// Lemire's fastmod (two multiplies) against reciprocals precomputed at
// construction, and successive probes advance by conditional subtract.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

#include "check/check.hpp"
#include "graph/types.hpp"
#include "simt/atomics.hpp"
#include "util/primes.hpp"

namespace glouvain::core {

/// n % d via two multiplications (Lemire 2019); d > 1, n < 2^32.
class FastMod {
 public:
  FastMod() = default;
  explicit FastMod(std::uint32_t d) noexcept
      : magic_(~std::uint64_t{0} / d + 1), d_(d) {}
  /// From a precomputed magic (= ~0 / d + 1, e.g. out of a
  /// util::HashTableParams LUT entry), skipping the 64-bit division.
  FastMod(std::uint64_t magic, std::uint32_t d) noexcept
      : magic_(magic), d_(d) {}

  std::uint32_t mod(std::uint32_t n) const noexcept {
    const std::uint64_t low = magic_ * n;
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(low) * d_) >> 64);
  }

 private:
  std::uint64_t magic_ = 0;
  std::uint32_t d_ = 1;
};

template <bool Atomic>
class BasicCommunityHashMap {
 public:
  static constexpr graph::Community kNull = graph::kInvalidCommunity;

  /// Emptiness is encoded as a kNull sentinel inside the key array
  /// itself (vs the bit-packed occupancy of zg::OccCommunityHashMap).
  /// The vector slot scan dispatches its masking strategy on this.
  static constexpr bool kOccLayout = false;

  /// capacity = keys.size() must be prime (double hashing needs the
  /// step h2 in [1, capacity) to be coprime with the capacity) and fit
  /// in 32 bits.
  BasicCommunityHashMap(std::span<graph::Community> keys,
                        std::span<graph::Weight> weights) noexcept
      : keys_(keys),
        weights_(weights),
        cap_(static_cast<std::uint32_t>(keys.size())),
        mod_cap_(cap_),
        mod_cap_minus1_(cap_ > 1 ? cap_ - 1 : 1) {
    assert(keys_.size() == weights_.size());
    assert(!keys_.empty());
    assert(keys_.size() < (std::uint64_t{1} << 32));
  }

  /// Hot-kernel constructor: probe magics come precomputed from the
  /// degree LUT instead of being divided out per vertex. `params` must
  /// describe capacity == keys.size().
  BasicCommunityHashMap(std::span<graph::Community> keys,
                        std::span<graph::Weight> weights,
                        const util::HashTableParams& params) noexcept
      : keys_(keys),
        weights_(weights),
        cap_(params.capacity),
        mod_cap_(params.magic_capacity, params.capacity),
        mod_cap_minus1_(params.magic_capacity_minus1, params.capacity - 1) {
    assert(keys_.size() == weights_.size());
    assert(keys_.size() == params.capacity);
    assert(params.capacity > 1);
  }

  /// Reset every slot to empty. (On the GPU this is the per-block
  /// shared-memory initialization loop.) In the task-local variant the
  /// weights need no reset — a claim initializes its weight slot before
  /// it is ever read; in the concurrent variant a racing add can land
  /// on a slot between claim and any initialization, so the weights
  /// must be pre-zeroed here.
  void clear() noexcept {
    for (std::uint32_t i = 0; i < cap_; ++i) {
      check::note_init(&keys_[i]);
      keys_[i] = kNull;
    }
    if constexpr (Atomic) {
      for (std::uint32_t i = 0; i < cap_; ++i) {
        check::note_init(&weights_[i]);
        weights_[i] = 0;
      }
    }
  }

  std::size_t capacity() const noexcept { return cap_; }

  /// Concurrent accumulate: hashWeight[slot(c)] += w. Behaviour is
  /// line-for-line Algorithm 2:
  ///   - key already present  -> add to the weight slot   (line 6-7)
  ///   - empty slot           -> claim, then add          (line 8-10)
  ///   - claim lost, same key -> add anyway               (line 11-12)
  ///   - claim lost, other key-> keep probing             (line 13)
  std::size_t insert_add(graph::Community c, graph::Weight w) noexcept {
    std::uint32_t pos = mod_cap_.mod(c);
    const std::uint32_t step = 1 + mod_cap_minus1_.mod(c);
    for (;;) {
      if constexpr (!Atomic) check::note_plain_read(&keys_[pos]);
      const graph::Community observed =
          Atomic ? simt::atomic_load(keys_[pos]) : keys_[pos];
      if (observed == c) {
        if constexpr (Atomic) {
          simt::atomic_add(weights_[pos], w);
        } else {
          check::note_plain_write(&weights_[pos]);
          weights_[pos] += w;
        }
        return pos;
      }
      if (observed == kNull) {
        if constexpr (Atomic) {
          const graph::Community prior = simt::atomic_cas(keys_[pos], kNull, c);
          if (prior == kNull || prior == c) {
            simt::atomic_add(weights_[pos], w);  // weights pre-zeroed in clear()
            return pos;
          }
          // Slot claimed for a different community; keep probing.
        } else {
          check::note_plain_claim(&keys_[pos]);
          keys_[pos] = c;
          check::note_plain_write(&weights_[pos]);
          weights_[pos] = w;  // claim initializes the weight slot
          return pos;
        }
      }
      pos += step;
      if (pos >= cap_) pos -= cap_;
    }
  }

  /// insert_add that also reports whether this call claimed the slot
  /// for a previously absent key (task-local variant only: claim
  /// tracking is per-caller state, which a concurrent table cannot
  /// attribute). The kernels use it to keep a compact list of occupied
  /// slots so the candidate scan can skip the empty majority of a
  /// sparsely filled table.
  std::size_t insert_add_claim(graph::Community c, graph::Weight w,
                               bool& claimed) noexcept {
    static_assert(!Atomic, "claim tracking is for task-local tables");
    claimed = false;
    std::uint32_t pos = mod_cap_.mod(c);
    const std::uint32_t step = 1 + mod_cap_minus1_.mod(c);
    for (;;) {
      check::note_plain_read(&keys_[pos]);
      const graph::Community observed = keys_[pos];
      if (observed == c) {
        check::note_plain_write(&weights_[pos]);
        weights_[pos] += w;
        return pos;
      }
      if (observed == kNull) {
        check::note_plain_claim(&keys_[pos]);
        keys_[pos] = c;
        check::note_plain_write(&weights_[pos]);
        weights_[pos] = w;
        claimed = true;
        return pos;
      }
      pos += step;
      if (pos >= cap_) pos -= cap_;
    }
  }

  /// Non-concurrent lookup (post-kernel): weight for community c, or 0.
  graph::Weight lookup(graph::Community c) const noexcept {
    std::uint32_t pos = mod_cap_.mod(c);
    const std::uint32_t step = 1 + mod_cap_minus1_.mod(c);
    for (std::uint32_t it = 0; it < cap_; ++it) {
      check::note_plain_read(&keys_[pos]);
      if (keys_[pos] == c) return weights_[pos];
      if (keys_[pos] == kNull) return 0;
      pos += step;
      if (pos >= cap_) pos -= cap_;
    }
    return 0;
  }

  graph::Community key_at(std::size_t pos) const noexcept {
    check::note_plain_read(&keys_[pos]);
    return keys_[pos];
  }
  graph::Weight weight_at(std::size_t pos) const noexcept {
    check::note_plain_read(&weights_[pos]);
    return weights_[pos];
  }
  bool occupied(std::size_t pos) const noexcept {
    check::note_plain_read(&keys_[pos]);
    return keys_[pos] != kNull;
  }

  /// Raw slot arrays for the vector scan (simt/vector_ops.hpp), which
  /// sweeps whole cache lines instead of per-slot accessors. Bulk
  /// vector loads carry no check:: notes, so these are only consumed
  /// outside GLOUVAIN_SIMTCHECK builds (kernel_ops gates on
  /// check::enabled()).
  const graph::Community* keys_data() const noexcept { return keys_.data(); }
  const graph::Weight* weights_data() const noexcept {
    return weights_.data();
  }

 private:
  std::span<graph::Community> keys_;
  std::span<graph::Weight> weights_;
  std::uint32_t cap_;
  FastMod mod_cap_;
  FastMod mod_cap_minus1_;
};

/// Concurrent table for storage shared across OS threads.
using CommunityHashMap = BasicCommunityHashMap<true>;
/// Task-local table for per-vertex / per-community kernel scratch.
using LocalCommunityHashMap = BasicCommunityHashMap<false>;

}  // namespace glouvain::core
