// Modularity-optimization phase (Algorithms 1 and 2 of the paper) on
// the software SIMT device.
#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/rows.hpp"
#include "graph/csr.hpp"
#include "simt/device.hpp"

namespace glouvain::obs {
class Recorder;
}

namespace glouvain::core {

class Workspace;

/// Mutable per-phase device state (the GPU-resident arrays).
struct PhaseState {
  std::vector<graph::Weight> strengths;    ///< k_i
  std::vector<graph::Weight> loops;        ///< self-loop weight of i
  std::vector<graph::Community> community; ///< C
  std::vector<graph::Community> new_comm;  ///< newComm
  std::vector<graph::Weight> tot;          ///< a_c
  std::vector<graph::VertexId> com_size;   ///< |c| (for the singleton guard)
  /// Predicted modularity gain of the pending newComm move (0 when the
  /// vertex stays). Accumulated at commit time for the sweep stopping
  /// rule, so no extra O(|E|) pass per sweep is needed.
  std::vector<double> move_gain;

  /// Initialize for a fresh phase: every vertex its own community.
  void reset(const graph::Csr& graph, simt::Device& device);

  /// Initialize from an existing partition (warm start): `seed` holds
  /// one community label < graph.num_vertices() per vertex; a_c and
  /// |c| are accumulated from the members. Labels need not be dense.
  void reset_from(const graph::Csr& graph, simt::Device& device,
                  std::span<const graph::Community> seed);

  /// reset() over a compressed row source: strengths/loop weights come
  /// from sequential decode (same row-order summation as the plain
  /// path, so every double matches bitwise).
  void reset(ZRows& rows, simt::Device& device);

  /// Re-seed community/tot/|c| from `seed`, keeping the cached static
  /// strengths/loops of an earlier reset over the SAME graph. This is
  /// the sharded engine's exchange-round path: the local graph is
  /// unchanged between rounds, so only the O(n) label-derived state is
  /// rebuilt and the O(arcs) strength pass is skipped. A real resident
  /// device pays exactly this — halo updates, not a re-upload.
  void reseed(simt::Device& device, std::span<const graph::Community> seed);
};

struct PhaseResult {
  int sweeps = 0;
  double modularity = 0;
  double first_sweep_seconds = 0;  ///< for the TEPS figure
};

/// Run one full modularity-optimization phase: sweeps over the degree
/// buckets until the per-sweep modularity gain drops below `threshold`
/// (Algorithm 1). `state` must be reset() for `graph` first; on return
/// state.community holds the computed assignment (labels are vertex ids,
/// not renumbered). `recorder` (optional) receives the "modopt" span
/// tree — binning, per-bucket kernel launches, commits, modularity
/// evaluations — plus bucket-occupancy / moved-fraction counters.
PhaseResult optimize_phase(simt::Device& device, const graph::Csr& graph,
                           const Config& config, PhaseState& state,
                           double threshold,
                           obs::Recorder* recorder = nullptr);

/// Restricted phase for warm starts: only the vertices in `active` are
/// binned into the degree buckets and may move; everything else keeps
/// its seeded community (use PhaseState::reset_from first). The
/// stopping rule and the modularity evaluation still see the whole
/// graph, so the returned modularity is exact.
PhaseResult optimize_phase(simt::Device& device, const graph::Csr& graph,
                           const Config& config, PhaseState& state,
                           std::span<const graph::VertexId> active,
                           double threshold,
                           obs::Recorder* recorder = nullptr);

/// The allocation-free entry point: every temporary (active list,
/// binning order, sub-round boundaries, per-worker partials, prim
/// scratch) comes from `ws`, so once the workspace has warmed up to
/// the graph's size a phase performs zero heap allocations. The plain
/// overloads above are thin wrappers over a throwaway Workspace.
PhaseResult optimize_phase(simt::Device& device, const graph::Csr& graph,
                           const Config& config, PhaseState& state,
                           std::span<const graph::VertexId> active,
                           double threshold, Workspace& ws,
                           obs::Recorder* recorder = nullptr);

/// The compressed-storage phase: same kernels templated over a ZRows
/// source (neighbour lists decoded per worker instead of read from
/// raw arrays). Restrictions of the z path: no coloring (it needs the
/// plain Csr) — callers gate on Config::use_coloring. Partitions are
/// bitwise-identical to the plain overloads' on the same graph.
PhaseResult optimize_phase(simt::Device& device, ZRows& rows,
                           const Config& config, PhaseState& state,
                           std::span<const graph::VertexId> active,
                           double threshold, Workspace& ws,
                           obs::Recorder* recorder = nullptr);

/// Modularity of the current assignment from the device arrays
/// (parallel; used for the sweep-termination test).
double device_modularity(simt::Device& device, const graph::Csr& graph,
                         const std::vector<graph::Community>& community,
                         const std::vector<graph::Weight>& tot);

/// Same, with per-worker partials drawn from `ws`.
double device_modularity(simt::Device& device, const graph::Csr& graph,
                         const std::vector<graph::Community>& community,
                         const std::vector<graph::Weight>& tot, Workspace& ws);

/// Same, over a compressed row source.
double device_modularity(simt::Device& device, ZRows& rows,
                         const std::vector<graph::Community>& community,
                         const std::vector<graph::Weight>& tot, Workspace& ws);

}  // namespace glouvain::core
