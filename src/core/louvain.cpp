#include "core/louvain.hpp"

#include <optional>
#include <stdexcept>

#include "obs/recorder.hpp"
#include "simt/atomics.hpp"
#include "util/timer.hpp"

namespace glouvain::core {

namespace {
using graph::Community;
using graph::Csr;
using graph::VertexId;

/// The device honours Options::threads unless the device section names
/// an explicit worker count of its own.
simt::DeviceConfig resolve_device(const Config& config) {
  simt::DeviceConfig dev = config.device;
  if (dev.worker_threads == 0) dev.worker_threads = config.threads;
  return dev;
}
}  // namespace

Louvain::Louvain(const Config& config)
    : config_(config),
      device_(std::make_unique<simt::Device>(resolve_device(config))) {}

Louvain::~Louvain() = default;

void Louvain::set_config(const Config& config) {
  const simt::DeviceConfig keep = config_.device;
  config_ = config;
  config_.device = keep;  // the live device's shape is immutable
}

PhaseResult Louvain::run_phase(const Csr& graph,
                               std::vector<Community>& community,
                               double threshold) {
  PhaseState state;
  state.reset(graph, *device_);
  PhaseResult pr =
      optimize_phase(*device_, graph, config_, state,
                     std::span<const graph::VertexId>{}, threshold, ws_);
  community = std::move(state.community);
  return pr;
}

Result Louvain::run(const Csr& graph, obs::Recorder* rec) {
  return run_impl(&graph, nullptr, {}, {}, /*warm=*/false, rec);
}

Result Louvain::run_z(const zg::ZCsr& z, obs::Recorder* rec) {
  if (config_.use_coloring) {
    throw std::invalid_argument(
        "run_z: use_coloring requires plain storage (the coloring pass "
        "walks the raw Csr)");
  }
  return run_impl(nullptr, &z, {}, {}, /*warm=*/false, rec);
}

Result Louvain::run_warm(const Csr& graph, std::span<const Community> seed,
                         std::span<const graph::VertexId> frontier,
                         obs::Recorder* rec) {
  if (seed.size() != graph.num_vertices()) {
    throw std::invalid_argument("run_warm: seed size != num_vertices");
  }
  for (const Community c : seed) {
    if (c >= graph.num_vertices()) {
      throw std::invalid_argument("run_warm: seed label out of range");
    }
  }
  for (const graph::VertexId v : frontier) {
    if (v >= graph.num_vertices()) {
      throw std::invalid_argument("run_warm: frontier vertex out of range");
    }
  }
  return run_impl(&graph, nullptr, seed, frontier, /*warm=*/true, rec);
}

Result Louvain::run_impl(const Csr* graph, const zg::ZCsr* z0,
                         std::span<const Community> seed,
                         std::span<const graph::VertexId> frontier, bool warm,
                         obs::Recorder* rec) {
  util::Timer total_timer;
  device_->clear_spills();

  const VertexId n0 = z0 ? z0->num_vertices() : graph->num_vertices();

  Result result;
  result.community.resize(n0);
  device_->for_each(n0, [&](std::size_t v) {
    result.community[v] = static_cast<Community>(v);
  });

  // Compressed level 0 (run_z): neighbour rows come from per-worker
  // decode cursors over the varint stream; levels >= 1 always run on
  // the (much smaller) contracted plain Csr.
  std::optional<ZRows> zrows;
  if (z0) {
    zrows.emplace(*z0, device_->workers());
    if (rec) {
      rec->count("zg/bytes_adj", static_cast<double>(z0->bytes_stream()));
      rec->count("zg/bytes_index", static_cast<double>(z0->bytes_index()));
      rec->count("zg/plain_bytes", static_cast<double>(z0->plain_bytes()));
      const double packed =
          static_cast<double>(z0->bytes_stream() + z0->bytes_index());
      if (packed > 0) {
        rec->count("zg/ratio",
                   static_cast<double>(z0->plain_bytes()) / packed);
      }
    }
  }

  // No level-0 copy: the input graph is only ever read. Contracted
  // levels are owned here and recycled into the workspace pools when
  // the next level replaces them — after level 1 the loop's CSR arrays
  // cycle through the same heap blocks (cudaMalloc-once discipline).
  const Csr* current = graph;
  Csr owned;
  double prev_q = -1.0;
  std::uint64_t prev_spills = 0;

  for (int level = 0; level < config_.max_levels; ++level) {
    if (rec) rec->set_level(level);
    const bool z_level = z0 != nullptr && level == 0;
    LevelReport report;
    report.vertices = z_level ? z0->num_vertices() : current->num_vertices();
    report.arcs = z_level ? z0->num_arcs() : current->num_arcs();
    report.modularity_before = prev_q < -0.5 ? 0 : prev_q;

    const double threshold = config_.thresholds.threshold_for(report.vertices);

    // Level 0 of a warm run starts from the seeded partition and sweeps
    // only the frontier; every later level is a normal cold phase on
    // the (much smaller) contracted graph. The phase state is a member:
    // reset() only rewrites, its arrays stay at their high-water mark.
    const bool warm_level = warm && level == 0;
    util::Timer opt_timer;
    PhaseState& state = state_;
    if (z_level) {
      // The reset pass is one full sequential decode of the stream
      // (per-worker chunks), so its wall time is the decode figure.
      util::Timer decode_timer;
      state.reset(*zrows, *device_);
      if (rec) rec->count("zg/decode_ns", decode_timer.seconds() * 1e9);
    } else if (warm_level) {
      state.reset_from(*current, *device_, seed);
    } else {
      state.reset(*current, *device_);
    }
    const PhaseResult phase =
        z_level ? optimize_phase(*device_, *zrows, config_, state,
                                 std::span<const graph::VertexId>{}, threshold,
                                 ws_, rec)
                : optimize_phase(
                      *device_, *current, config_, state,
                      warm_level ? frontier : std::span<const graph::VertexId>{},
                      threshold, ws_, rec);
    report.optimize_seconds = opt_timer.seconds();
    report.iterations = phase.sweeps;
    report.modularity_after = phase.modularity;

    if (level == 0) {
      result.first_phase_teps = phase.first_sweep_seconds > 0
          ? static_cast<double>(report.arcs) / phase.first_sweep_seconds
          : 0;
    }

    // Termination always checks against the FINE threshold: t_bin only
    // cuts phases short, it must not end the whole hierarchy early.
    const bool converged =
        prev_q >= -0.5 && (phase.modularity - prev_q) < config_.thresholds.t_final;

    util::Timer agg_timer;
    AggregationResult agg =
        z_level ? aggregate(*device_, *zrows, config_, state.community, ws_, rec)
                : aggregate(*device_, *current, config_, state.community, ws_,
                            rec);

    // Fold this level into the original-vertex mapping:
    // community(orig) = new_id[ phase community of current vertex ].
    {
      obs::Span fold_span(rec, "fold");
      const VertexId cn = static_cast<VertexId>(report.vertices);
      auto dense = ws_.buffer<Community>(Workspace::Slot::kFoldDense, cn);
      device_->for_each(cn, [&](std::size_t v) {
        dense[v] = agg.new_id[state.community[v]];
      });
      // In-place composition (flatten allocated a fresh vector per
      // level): community[orig] indexes dense, never itself.
      device_->for_each(result.community.size(), [&](std::size_t v) {
        result.community[v] = dense[result.community[v]];
      });
      result.dendrogram.push_level(
          std::vector<Community>(dense.begin(), dense.end()));
    }
    ws_.put(std::move(agg.new_id));
    report.aggregate_seconds = agg_timer.seconds();
    result.levels.push_back(report);

    if (rec) {
      rec->count("level/vertices", static_cast<double>(report.vertices));
      rec->count("level/arcs", static_cast<double>(report.arcs));
      const std::uint64_t spills = device_->total_spills();
      rec->count("level/shared_spills",
                 static_cast<double>(spills - prev_spills));
      prev_spills = spills;
    }

    const bool shrunk =
        agg.contracted.num_vertices() < static_cast<VertexId>(report.vertices);
    prev_q = phase.modularity;
    // Retire the previous owned level into the recycling pools before
    // adopting the new one (never the caller's input graph).
    Csr next = std::move(agg.contracted);
    if (owned.num_vertices() > 0) ws_.recycle(std::move(owned));
    owned = std::move(next);
    current = &owned;
    if (converged || !shrunk) break;
  }
  if (rec) rec->set_level(-1);
  if (rec && zrows) {
    rec->count("zg/rows_decoded", static_cast<double>(zrows->rows_decoded()));
    rec->count("zg/reseeks", static_cast<double>(zrows->reseeks()));
  }

  result.modularity = prev_q;
  result.total_seconds = total_timer.seconds();
  result.device.shared_spills = device_->total_spills();
  result.device.workers = device_->workers();
  return result;
}

Result louvain(const Csr& graph, const Config& config, obs::Recorder* rec) {
  Louvain runner(config);
  return runner.run(graph, rec);
}

Result louvain_z(const zg::ZCsr& z, const Config& config, obs::Recorder* rec) {
  Louvain runner(config);
  return runner.run_z(z, rec);
}

}  // namespace glouvain::core
