// Configuration of the GPU-style Louvain algorithm: degree buckets,
// lane assignment, shared/global hash placement, update strategy, and
// the threshold schedule. Defaults are exactly the paper's (§4.1).
#pragma once

#include <vector>

#include "core/common.hpp"
#include "detect/options.hpp"
#include "graph/types.hpp"
#include "simt/device.hpp"

namespace glouvain::core {

/// Degree-based work binning (§4.1). Bucket k holds vertices with
/// degree in (bounds[k-1], bounds[k]]; the final bucket is unbounded.
/// lanes[k] is the number of cooperating lanes assigned to each vertex
/// of that bucket, and buckets with index >= global_from place their
/// hash tables in "global memory" instead of the per-SM shared arena.
struct BucketScheme {
  std::vector<graph::EdgeIdx> bounds;
  std::vector<unsigned> lanes;
  std::size_t global_from = 0;

  std::size_t num_buckets() const noexcept { return lanes.size(); }

  /// The paper's 7 modularity-optimization buckets: degrees
  /// [1,4], [5,8], [9,16], [17,32] get 4/8/16/32 lanes (sub-warp
  /// groups, 2^{k+1} threads for group k=1..4); [33,84] a full warp;
  /// [85,319] a 128-thread block with the table in shared memory;
  /// >319 a block with the table in global memory.
  static BucketScheme paper_modopt() {
    return {{4, 8, 16, 32, 84, 319}, {4, 8, 16, 32, 32, 128, 128}, 6};
  }

  /// The paper's 3 aggregation buckets on community degree sums:
  /// [1,127] one warp (shared), [128,479] one block (shared),
  /// >=480 one block with the hash table in global memory.
  static BucketScheme paper_aggregation() {
    return {{127, 479}, {32, 128, 128}, 2};
  }

  /// Ablation scheme: no binning, one lane per vertex, shared tables
  /// with spill to global (the "node centered" strategy of prior work).
  static BucketScheme single_lane() { return {{}, {1}, 1}; }

  /// Ablation scheme: a full warp for every vertex regardless of degree.
  static BucketScheme warp_per_vertex() { return {{}, {32}, 1}; }

  /// Bucket index for a degree (0-based).
  std::size_t bucket_of(graph::EdgeIdx degree) const noexcept {
    std::size_t b = 0;
    while (b < bounds.size() && degree > bounds[b]) ++b;
    return b;
  }
};

/// The table-layout knob now lives on detect::Options (one canonical
/// surface for every front end); the old core-qualified name stays
/// valid for existing call sites.
using TableLayout = detect::TableLayout;

/// When vertices observe each other's moves (§5 "relaxed" experiment).
enum class UpdateStrategy {
  /// Commit community updates after every degree bucket (the paper's
  /// default: between pure-synchronous and asynchronous).
  Bucketed,
  /// Commit only at the end of a full sweep over all buckets (the
  /// "relaxed" strategy; up to 10x slower per the paper).
  Relaxed,
};

/// The shared knobs (thresholds, max_levels, max_sweeps_per_level,
/// threads) live in the detect::Options base; only the GPU-style
/// backend's own machinery remains here.
struct Config : detect::Options {
  BucketScheme modopt_buckets = BucketScheme::paper_modopt();
  BucketScheme aggregation_buckets = BucketScheme::paper_aggregation();
  UpdateStrategy update = UpdateStrategy::Bucketed;
  /// Each degree bucket is processed in this many hash-partitioned
  /// sub-rounds, committing moves after each. 1 reproduces the paper's
  /// pseudocode exactly; >1 is a lightweight stand-in for the graph
  /// coloring of Lu et al. [16] (which the paper cites as the source
  /// of its move-control heuristics) and breaks the synchronous
  /// swap oscillation on uniform-degree graphs, where a single bucket
  /// holds nearly every vertex. Quality/cost measured by the
  /// `ablation_subrounds` bench; see DESIGN.md.
  unsigned commit_subrounds = 4;
  /// Evaluate the exact modularity inside optimize_phase (one O(|E|)
  /// pass up front plus one per surviving sweep — the oscillation
  /// catch of the sweep stopping rule, and the source of
  /// PhaseResult::modularity). The sharded engine disables it for its
  /// frontier rounds: there the round loop is the outer iteration,
  /// stopping on all-reduced move counts, and a per-phase O(|E|)
  /// evaluation would put the full edge set on the per-round critical
  /// path. With false, sweeps stop on the accumulated predicted gain
  /// alone (bounded by max_sweeps_per_level) and
  /// PhaseResult::modularity is 0.
  bool eval_phase_modularity = true;
  /// use_coloring and table_layout moved to the detect::Options base —
  /// they are front-end knobs now, inherited here. Only the device
  /// machinery below remains core-specific.
  ///
  /// NOTE: this member hides the inherited Options::device backend
  /// knob (a simt::Backend) by design: within core the full
  /// DeviceConfig is the source of truth, and to_config() copies the
  /// Options knob into device.backend during lowering.
  simt::DeviceConfig device;
};

/// THE single lowering from the canonical front-end surface
/// (detect::Options) to the GPU-style backend's Config. Every front
/// end — detect registry, svc, CLI, benches — goes through here
/// instead of assembling a core::Config field by field, so an Options
/// knob can never silently diverge from the core knob it shadows.
/// `base` carries backend-internal extension fields (bucket schemes,
/// update strategy, device shape); its Options slice is overwritten.
inline Config to_config(const detect::Options& options, Config base = {}) {
  static_cast<detect::Options&>(base) = options;
  base.device.backend = options.device;
  // worker_threads stays as the extension set it; core::Louvain's
  // resolve_device falls back to Options::threads when it is 0.
  return base;
}

}  // namespace glouvain::core
