// Static warp-occupancy analysis of the degree-bucketed kernel — the
// reproduction of the paper's §5 profiling claim: "on UK-2002, on
// average 62.5% of the threads in a warp are active whenever the warp
// is selected for execution".
//
// A vertex of degree d processed by L lanes issues ceil(d/L) rounds of
// the edge loop; the last round has d mod L active lanes (all L when it
// divides evenly). Occupancy = total active lane-slots / total issued
// lane-slots, exactly what the profiler counts for the hashing loop.
// The analysis is static (degree distribution + bucket scheme), so it
// isolates the divergence the BUCKETING itself causes, independent of
// memory latency.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "graph/csr.hpp"

namespace glouvain::core {

struct BucketOccupancy {
  std::size_t bucket = 0;
  unsigned lanes = 0;
  graph::VertexId vertices = 0;
  graph::EdgeIdx edges = 0;        ///< active lane-slots (= degree sum)
  graph::EdgeIdx lane_slots = 0;   ///< issued lane-slots
  double occupancy = 0;            ///< edges / lane_slots
};

struct OccupancyReport {
  std::vector<BucketOccupancy> buckets;
  double overall = 0;  ///< edge-weighted across buckets
};

/// Occupancy of the hashing loop of computeMove under `scheme`.
OccupancyReport analyze_occupancy(const graph::Csr& graph,
                                  const BucketScheme& scheme);

}  // namespace glouvain::core
