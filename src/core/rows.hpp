// Row sources: the one seam between the Louvain kernels and graph
// storage. Kernels ask a Rows object for a vertex's (adjacency,
// weights, degree) view and never touch offsets or raw arrays, so the
// same kernel template runs over a plain Csr (zero-cost spans — the
// default, codegen-identical to the direct-pointer code it replaced)
// or a zg::ZCsr (per-worker decode buffers fed by varint cursors —
// the compressed level-0 path of the zg subsystem).
//
// ZRows decodes into per-worker grow-on-demand buffers rather than
// the task's SharedArena: a hub row can exceed any realistic shared
// capacity, and the decode buffer is host-side plumbing of the
// storage substitution, not part of the modelled device memory (see
// DESIGN.md §12). Each worker keeps a cached cursor so vertex-ordered
// passes (strength reset, modularity) decode sequentially; random-
// order passes (bucketed sweeps) re-seek through the skip index.
//
// Bitwise contract: a decoded row is element-for-element identical to
// the plain row (the varint codec is lossless), and every kernel
// consumes it in the same order — so plain and compressed runs make
// identical move decisions.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "zg/zcsr.hpp"

namespace glouvain::core {

/// What a kernel sees of one vertex's row.
struct RowView {
  const graph::VertexId* adj;
  const graph::Weight* w;
  std::uint32_t deg;
};

class PlainRows {
 public:
  static constexpr bool kPlain = true;

  explicit PlainRows(const graph::Csr& g) noexcept : g_(&g) {}

  graph::VertexId num_vertices() const noexcept { return g_->num_vertices(); }
  graph::EdgeIdx num_arcs() const noexcept { return g_->num_arcs(); }
  graph::Weight total_weight() const noexcept { return g_->total_weight(); }
  std::uint32_t degree(graph::VertexId v) const noexcept {
    return static_cast<std::uint32_t>(g_->degree(v));
  }

  RowView row(graph::VertexId v, unsigned /*worker*/) const noexcept {
    const graph::EdgeIdx off = g_->offset(v);
    return {g_->adjacency().data() + off, g_->edge_weights().data() + off,
            static_cast<std::uint32_t>(g_->degree(v))};
  }

  const graph::Csr& graph() const noexcept { return *g_; }

 private:
  const graph::Csr* g_;
};

class ZRows {
 public:
  static constexpr bool kPlain = false;

  ZRows(const zg::ZCsr& z, unsigned workers) : z_(&z), workers_(workers) {
    for (unsigned w = 0; w < workers; ++w) {
      workers_state_.emplace_back(z.cursor());
    }
  }

  graph::VertexId num_vertices() const noexcept { return z_->num_vertices(); }
  graph::EdgeIdx num_arcs() const noexcept { return z_->num_arcs(); }
  graph::Weight total_weight() const noexcept { return z_->total_weight(); }
  std::uint32_t degree(graph::VertexId v) const noexcept {
    return z_->degree(v);
  }

  /// Decode row v into worker-local scratch. The view stays valid
  /// until this worker's next row() call.
  RowView row(graph::VertexId v, unsigned worker) noexcept {
    Worker& st = workers_state_[worker];
    const std::uint32_t deg = z_->degree(v);
    if (st.adj.size() < deg) {
      st.adj.resize(deg);
      st.w.resize(deg);
    }
    if (st.cursor.vertex() != v) {
      st.cursor = z_->cursor_at(v);
      ++st.reseeks;
    }
    st.cursor.decode_into(st.adj.data(), st.w.data());
    ++st.rows;
    return {st.adj.data(), st.w.data(), deg};
  }

  const zg::ZCsr& zcsr() const noexcept { return *z_; }

  /// Rows decoded across all workers since construction.
  std::uint64_t rows_decoded() const noexcept {
    std::uint64_t total = 0;
    for (const Worker& st : workers_state_) total += st.rows;
    return total;
  }
  /// Decodes that had to re-seek through the skip index (cache-cold
  /// random access; vertex-ordered passes keep this near zero).
  std::uint64_t reseeks() const noexcept {
    std::uint64_t total = 0;
    for (const Worker& st : workers_state_) total += st.reseeks;
    return total;
  }

 private:
  // Padded so neighbouring workers' counters and buffer headers don't
  // false-share under the dynamic chunk scheduler.
  struct alignas(64) Worker {
    explicit Worker(zg::ZCsr::Cursor c) : cursor(c) {}
    zg::ZCsr::Cursor cursor;
    std::vector<graph::VertexId> adj;
    std::vector<graph::Weight> w;
    std::uint64_t rows = 0;
    std::uint64_t reseeks = 0;
  };

  const zg::ZCsr* z_;
  unsigned workers_;
  std::vector<Worker> workers_state_;
};

}  // namespace glouvain::core
