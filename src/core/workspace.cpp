#include "core/workspace.hpp"

#include <string>

#include "obs/recorder.hpp"

namespace glouvain::core {

void Workspace::emit(obs::Recorder* rec, std::string_view phase,
                     const Counters& since) const {
  if (!rec) return;
  const Counters now = counters();
  std::string base(phase);
  base += "/ws_";
  const auto name = [&](const char* suffix) { return base + suffix; };
  rec->count(name("requests"),
             static_cast<double>(now.requests - since.requests));
  rec->count(name("kb_requested"),
             static_cast<double>(now.bytes_requested - since.bytes_requested) /
                 1024.0);
  rec->count(name("arena_hits"), static_cast<double>(now.hits - since.hits));
  rec->count(name("heap_fallbacks"),
             static_cast<double>(now.heap_grows - since.heap_grows));
  rec->count_max(name("held_kb"), static_cast<double>(held_bytes()) / 1024.0);
}

}  // namespace glouvain::core
