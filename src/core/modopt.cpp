#include "core/modopt.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "check/check.hpp"
#include "core/buckets.hpp"
#include "core/rows.hpp"
#include "core/workspace.hpp"
#include "graph/coloring.hpp"
#include "core/hash_map.hpp"
#include "obs/recorder.hpp"
#include "zg/occmap.hpp"
#include "simt/atomics.hpp"
#include "simt/kernel_ops.hpp"
#include "simt/lane_group.hpp"
#include "simt/lane_vec.hpp"
#include "util/primes.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace glouvain::core {

namespace {

using graph::Community;
using graph::Csr;
using graph::EdgeIdx;
using graph::VertexId;
using graph::Weight;

/// The warp collectives (better(), the argmax identity, the slot sort,
/// the hashing and scan loops) live in simt/kernel_ops.hpp now, single-
/// sourced over the scalar and vector lane substrates. The aliases keep
/// this file reading like Algorithm 2.
using Candidate = simt::BestComm;
constexpr Candidate kEmptyCandidate = simt::kEmptyBest;
using simt::better;

/// The computeMove kernel body (Algorithm 2) for one vertex. Rows is
/// the storage seam (PlainRows or ZRows); Table is the task-local
/// hash map; Group is LaneGroup, a FixedLaneGroup specialization, or a
/// VectorLaneGroup. `touched` is caller scratch for >= capacity slot
/// indices.
template <typename Rows, typename Group, typename Table>
void compute_move(Rows& rows, unsigned worker, PhaseState& state, Weight m2,
                  VertexId v, Group group, Table& table,
                  std::span<std::uint32_t> touched) {
  const RowView r = rows.row(v, worker);
  const Community old_c = state.community[v];
  const Weight k = state.strengths[v];
  const double inv_m2 = 1.0 / m2;

  // --- Lines 2-13: lane-parallel hashing of the neighbourhood into
  // the task-local table (the self-loop contributes equally to every
  // candidate, so it is skipped). Claimed slots are recorded so a
  // sparse table can be scanned compactly below.
  const std::uint32_t num_touched = simt::hash_row_claim(
      group, r, v, state.community.data(), table, touched.data());

  // --- Line 14: scan the table slots and reduce to the best
  // destination. The gain term per candidate community c (v removed
  // from its own community first) is
  //   e_{v->c} - k_v * a_c / 2m,
  // the variable part of Eq. (2).
  Weight d_old = 0;  // e_{v->C(v)\{v}}, collected during the slot scan
  const Candidate best =
      simt::scan_best(group, table, touched.first(num_touched), old_c,
                      state.tot.data(), k, inv_m2, d_old);

  // --- Lines 15-18: move only on strictly positive modularity gain
  // relative to staying (e_{v->C(v)\{v}} enters both sides of Eq. (2),
  // here it appears only in the stay gain).
  const double stay_gain =
      d_old - k * (simt::atomic_load(state.tot[old_c]) - k) * inv_m2;
  bool move = best.comm != graph::kInvalidCommunity && best.gain > stay_gain + 1e-15;
  // Singleton-to-singleton guard from [16] (paper §4): a vertex that is
  // a community by itself may only join another singleton community if
  // that community's id is smaller. The guard vetoes the chosen move
  // (the vertex waits a sweep) rather than redirecting it to a
  // second-best target, which would cascade into over-merging.
  if (move && simt::atomic_load(state.com_size[old_c]) == 1 &&
      best.comm > old_c &&
      simt::atomic_load(state.com_size[best.comm]) == 1) {
    move = false;
  }
  check::note_plain_write(&state.new_comm[v]);
  state.new_comm[v] = move ? best.comm : old_c;
  // Predicted dQ of this move against the snapshot (exact if no other
  // vertex moves concurrently); drives the sweep stopping rule.
  check::note_plain_write(&state.move_gain[v]);
  state.move_gain[v] = move ? 2.0 * (best.gain - stay_gain) / m2 : 0.0;
}

/// compute_move specialized for degree-1 vertices: the table would hold
/// at most one candidate, so the decision closes form and the arena
/// allocation, table clear and slot scan all drop out. Every
/// floating-point expression matches the general kernel operand for
/// operand (including the better() fold, for NaN behaviour), so the
/// chosen move is bitwise identical.
template <typename Rows>
void compute_move_deg1(Rows& rows, unsigned worker, PhaseState& state,
                       Weight m2, VertexId v) {
  const RowView r = rows.row(v, worker);
  const Community old_c = state.community[v];
  const Weight k = state.strengths[v];
  const double inv_m2 = 1.0 / m2;
  const VertexId j = r.adj[0];

  Weight d_old = 0;
  Candidate best = kEmptyCandidate;
  if (j != v) {  // a pure self-loop vertex has no candidate
    const Community c = simt::atomic_load(state.community[j]);
    const Weight w = r.w[0];
    if (c == old_c) {
      d_old = w;
    } else {
      const double gain = w - k * simt::atomic_load(state.tot[c]) * inv_m2;
      best = better(kEmptyCandidate, {gain, c});
    }
  }

  const double stay_gain =
      d_old - k * (simt::atomic_load(state.tot[old_c]) - k) * inv_m2;
  bool move = best.comm != graph::kInvalidCommunity && best.gain > stay_gain + 1e-15;
  if (move && simt::atomic_load(state.com_size[old_c]) == 1 &&
      best.comm > old_c &&
      simt::atomic_load(state.com_size[best.comm]) == 1) {
    move = false;
  }
  check::note_plain_write(&state.new_comm[v]);
  state.new_comm[v] = move ? best.comm : old_c;
  check::note_plain_write(&state.move_gain[v]);
  state.move_gain[v] = move ? 2.0 * (best.gain - stay_gain) / m2 : 0.0;
}

struct CommitResult {
  double gain = 0;          ///< accumulated predicted modularity gain
  std::size_t moved = 0;    ///< vertices that changed community
};

/// Commit newComm for the vertices of one bucket and update a_c and the
/// community sizes incrementally (equivalent to the paper's "recompute
/// a_c in parallel", Algorithm 1 lines 8-11, but O(bucket) not O(n)).
/// Per-worker partials come from the workspace: no heap traffic.
CommitResult commit_moves(simt::Device& device, PhaseState& state,
                          std::span<const VertexId> vertices, Workspace& ws) {
  auto gain_partial =
      ws.buffer<double>(Workspace::Slot::kModoptGainPartial, device.workers());
  auto moved_partial = ws.buffer<std::size_t>(
      Workspace::Slot::kModoptMovedPartial, device.workers());
  for (unsigned w = 0; w < device.workers(); ++w) {
    gain_partial[w] = 0;
    moved_partial[w] = 0;
  }
  device.pool().parallel_for(vertices.size(), [&](std::size_t i, unsigned worker) {
    const VertexId v = vertices[i];
    const Community to = state.new_comm[v];
    const Community from = state.community[v];
    if (to == from) return;
    const Weight k = state.strengths[v];
    simt::atomic_add(state.tot[from], -k);
    simt::atomic_add(state.tot[to], k);
    simt::atomic_sub(state.com_size[from], VertexId{1});
    simt::atomic_add(state.com_size[to], VertexId{1});
    state.community[v] = to;
    gain_partial[worker] += state.move_gain[v];
    ++moved_partial[worker];
  });
  CommitResult total;
  for (unsigned w = 0; w < device.workers(); ++w) {
    total.gain += gain_partial[w];
    total.moved += moved_partial[w];
  }
  return total;
}

}  // namespace

void PhaseState::reset(const Csr& graph, simt::Device& device) {
  const VertexId n = graph.num_vertices();
  strengths.resize(n);
  loops.resize(n);
  community.resize(n);
  new_comm.resize(n);
  tot.resize(n);
  com_size.resize(n);
  move_gain.resize(n);
  device.for_each(n, [&](std::size_t v) {
    const auto vid = static_cast<VertexId>(v);
    strengths[v] = graph.strength(vid);
    loops[v] = graph.loop_weight(vid);
    community[v] = vid;
    new_comm[v] = vid;
    tot[v] = strengths[v];
    com_size[v] = 1;
    move_gain[v] = 0;
  });
}

void PhaseState::reset_from(const Csr& graph, simt::Device& device,
                            std::span<const Community> seed) {
  const VertexId n = graph.num_vertices();
  assert(seed.size() == n);
  strengths.resize(n);
  loops.resize(n);
  community.resize(n);
  new_comm.resize(n);
  tot.resize(n);
  com_size.resize(n);
  move_gain.resize(n);
  device.for_each(n, [&](std::size_t v) {
    const auto vid = static_cast<VertexId>(v);
    assert(seed[v] < n);
    strengths[v] = graph.strength(vid);
    loops[v] = graph.loop_weight(vid);
    community[v] = seed[v];
    new_comm[v] = seed[v];
    tot[v] = 0;
    com_size[v] = 0;
    move_gain[v] = 0;
  });
  device.for_each(n, [&](std::size_t v) {
    simt::atomic_add(tot[seed[v]], strengths[v]);
    simt::atomic_add(com_size[seed[v]], VertexId{1});
  });
}

void PhaseState::reseed(simt::Device& device,
                        std::span<const Community> seed) {
  const std::size_t n = strengths.size();
  assert(seed.size() == n);  // sized by a prior reset over this graph
  device.for_each(n, [&](std::size_t v) {
    assert(seed[v] < n);
    community[v] = seed[v];
    new_comm[v] = seed[v];
    tot[v] = 0;
    com_size[v] = 0;
    move_gain[v] = 0;
  });
  device.for_each(n, [&](std::size_t v) {
    simt::atomic_add(tot[seed[v]], strengths[v]);
    simt::atomic_add(com_size[seed[v]], VertexId{1});
  });
}

void PhaseState::reset(ZRows& rows, simt::Device& device) {
  const VertexId n = rows.num_vertices();
  strengths.resize(n);
  loops.resize(n);
  community.resize(n);
  new_comm.resize(n);
  tot.resize(n);
  com_size.resize(n);
  move_gain.resize(n);
  device.for_each_worker(n, [&](std::size_t v, unsigned worker) {
    const auto vid = static_cast<VertexId>(v);
    const RowView r = rows.row(vid, worker);
    // Same row-order summation as Csr::strength/loop_weight: the
    // decoded weights are bitwise-equal, so k_i and the loop weight
    // match the plain path exactly.
    Weight s = 0;
    Weight loop = 0;
    for (std::uint32_t i = 0; i < r.deg; ++i) {
      s += r.w[i];
      if (r.adj[i] == vid) loop += r.w[i];
    }
    strengths[v] = s;
    loops[v] = loop;
    community[v] = vid;
    new_comm[v] = vid;
    tot[v] = s;
    com_size[v] = 1;
    move_gain[v] = 0;
  });
}

namespace {

template <typename Rows>
double device_modularity_impl(simt::Device& device, Rows& rows,
                              const std::vector<Community>& community,
                              const std::vector<Weight>& tot,
                              std::span<Weight> in_partial,
                              std::span<Weight> tot_partial) {
  const Weight m2 = rows.total_weight();
  for (unsigned w = 0; w < device.workers(); ++w) {
    in_partial[w] = 0;
    tot_partial[w] = 0;
  }
  // The vector backend gathers + mask-sums each row's internal weight
  // (re-associated sum — permitted there, not on the bitwise-stable
  // scalar backend). Under the checker the scalar loop runs so its
  // plain reads stay visible.
  const bool vec_rows =
      device.backend() == simt::Backend::kVector && !check::enabled();
  auto& pool = device.pool();
  pool.parallel_for(rows.num_vertices(), [&](std::size_t vi, unsigned worker) {
    const auto v = static_cast<VertexId>(vi);
    const Community c = community[v];
    const RowView r = rows.row(v, worker);
    Weight internal;
    if (vec_rows) {
      internal = simt::vec::row_internal_weight(r.adj, r.w, r.deg,
                                                community.data(), c);
    } else {
      internal = 0;
      for (std::uint32_t i = 0; i < r.deg; ++i) {
        if (community[r.adj[i]] == c) internal += r.w[i];
      }
    }
    in_partial[worker] += internal;
    // Each community's tot is summed once by its representative slot:
    // slot v holds tot[v] which is nonzero only for live communities.
    tot_partial[worker] += tot[v] * tot[v];
  });
  Weight in_total = 0, tot_sq = 0;
  for (unsigned w = 0; w < device.workers(); ++w) {
    in_total += in_partial[w];
    tot_sq += tot_partial[w];
  }
  return in_total / m2 - tot_sq / (m2 * m2);
}

}  // namespace

double device_modularity(simt::Device& device, const Csr& graph,
                         const std::vector<Community>& community,
                         const std::vector<Weight>& tot) {
  if (graph.total_weight() <= 0) return 0;
  std::vector<Weight> in_partial(device.workers());
  std::vector<Weight> tot_partial(device.workers());
  PlainRows rows(graph);
  return device_modularity_impl(device, rows, community, tot, in_partial,
                                tot_partial);
}

double device_modularity(simt::Device& device, const Csr& graph,
                         const std::vector<Community>& community,
                         const std::vector<Weight>& tot, Workspace& ws) {
  if (graph.total_weight() <= 0) return 0;
  PlainRows rows(graph);
  return device_modularity_impl(
      device, rows, community, tot,
      ws.buffer<Weight>(Workspace::Slot::kModoptInPartial, device.workers()),
      ws.buffer<Weight>(Workspace::Slot::kModoptTotPartial, device.workers()));
}

double device_modularity(simt::Device& device, ZRows& rows,
                         const std::vector<Community>& community,
                         const std::vector<Weight>& tot, Workspace& ws) {
  if (rows.total_weight() <= 0) return 0;
  return device_modularity_impl(
      device, rows, community, tot,
      ws.buffer<Weight>(Workspace::Slot::kModoptInPartial, device.workers()),
      ws.buffer<Weight>(Workspace::Slot::kModoptTotPartial, device.workers()));
}

namespace {

template <typename Rows>
PhaseResult optimize_phase_impl(simt::Device& device, Rows& rows,
                                const Config& config, PhaseState& state,
                                std::span<const VertexId> active,
                                double threshold, Workspace& ws,
                                obs::Recorder* rec) {
  // A workspace is single-threaded state: two concurrent phases on one
  // ws (e.g. an svc job-routing bug) would silently corrupt buffers.
  check::WorkspaceGuard ws_guard(&ws);
  const VertexId n = rows.num_vertices();
  const Weight m2 = rows.total_weight();
  PhaseResult result;
  if (n == 0 || m2 <= 0) return result;
  obs::Span phase_span(rec, "modopt");
  const Workspace::Counters ws_since = ws.counters();

  // An empty subset means the classic full phase over every vertex.
  if (active.empty()) {
    auto all = ws.buffer<VertexId>(Workspace::Slot::kModoptActive, n);
    device.for_each(n, [&](std::size_t v) { all[v] = static_cast<VertexId>(v); });
    active = {all.data(), all.size()};
  }
  const std::size_t num_active = active.size();

  // Vector lane substrate? Resolved once per phase from the device.
  // Under the checker the scalar twin always runs (kernel_ops gates on
  // check::enabled()), so the checker keeps validating every build.
  const bool vector_backend =
      device.backend() == simt::Backend::kVector && !check::enabled();
  std::span<simt::VecLaneStats> vstats;
  if (vector_backend) {
    vstats = ws.buffer<simt::VecLaneStats>(Workspace::Slot::kModoptVecStats,
                                           device.workers());
    for (unsigned w = 0; w < device.workers(); ++w) vstats[w] = {};
  }

  const BucketScheme& scheme = config.modopt_buckets;
  // Degrees are fixed within a phase, so one binning serves every sweep
  // (the pseudocode re-partitions per sweep; the result is identical).
  // Binning runs over subset positions, then maps back to vertex ids.
  Binned& binned = ws.modopt_binned();
  {
    obs::Span span(rec, "modopt/binning");
    bin_by_key_into(
        num_active, scheme,
        [&](VertexId i) { return rows.degree(active[i]); }, binned,
        ws.scratch(), device.pool());
  }
  device.for_each(num_active,
                  [&](std::size_t i) { binned.order[i] = active[binned.order[i]]; });
  if (rec) {
    for (std::size_t b = 0; b < scheme.num_buckets(); ++b) {
      rec->count("modopt/bucket_occupancy",
                 static_cast<double>(binned.bucket(b).size()),
                 static_cast<std::int64_t>(b));
    }
    // Bytes the per-vertex community tables will claim from the
    // shared/global arenas this phase: keys + weights + touched list,
    // plus the bit-packed side words under TableLayout::kOccupancy.
    double ht_bytes = 0;
    for (std::size_t i = 0; i < num_active; ++i) {
      const std::uint32_t deg = rows.degree(binned.order[i]);
      if (deg < 2) continue;
      const std::size_t cap = util::hash_params_for_degree(deg).capacity;
      double bytes =
          static_cast<double>(cap) *
          (sizeof(Community) + sizeof(Weight) + sizeof(std::uint32_t));
      if (config.table_layout == TableLayout::kOccupancy) {
        bytes += static_cast<double>(zg::OccCommunityHashMap::occ_words(cap) *
                                     sizeof(std::uint32_t));
      }
      ht_bytes += bytes;
    }
    rec->count("zg/bytes_ht", ht_bytes);
  }
  // One interned name per degree-bucket kernel so the exporters can
  // break sweep time down the way Figure 6 does (built only when a
  // recorder is attached — the disabled path allocates nothing).
  std::vector<std::string> bucket_names;
  if (rec) {
    bucket_names.resize(scheme.num_buckets());
    for (std::size_t b = 0; b < scheme.num_buckets(); ++b) {
      bucket_names[b] = "modopt/bucket" + std::to_string(b);
    }
  }

  // Sub-round grouping within each bucket: vertices of one bucket are
  // reordered so sub-round classes are contiguous, preserving relative
  // order inside each class. Classes come either from a hash
  // (Config::commit_subrounds) or from a proper graph coloring
  // (Config::use_coloring — the mechanism of [16], under which no two
  // adjacent vertices ever decide concurrently).
  graph::Coloring coloring;
  unsigned subrounds = 1;
  if (config.update == UpdateStrategy::Bucketed) {
    if (config.use_coloring) {
      // Coloring walks the raw Csr; the compressed path rejects the
      // combination upstream (louvain validates before phase entry).
      if constexpr (Rows::kPlain) {
        coloring = graph::color_graph(rows.graph());
        subrounds = std::max(1u, coloring.num_colors);
      } else {
        check::contract(false, "modopt: coloring requires plain storage");
      }
    } else {
      subrounds = std::max(1u, config.commit_subrounds);
    }
  }
  const auto class_of = [&](VertexId v) -> unsigned {
    return config.use_coloring
               ? coloring.color[v]
               : static_cast<unsigned>(util::hash64(v) % subrounds);
  };
  const std::size_t order_span = rec ? rec->begin_span("modopt/order") : 0;
  // Every position of `order` is written by the class regrouping below,
  // so the workspace buffer needs no initial copy of binned.order.
  auto order = ws.buffer<VertexId>(Workspace::Slot::kModoptOrder, num_active);
  // sub_begin[b * subrounds + s] .. [b * subrounds + s + 1) is the
  // half-open range of bucket b's sub-round s within `order`.
  auto sub_begin = ws.buffer<std::size_t>(Workspace::Slot::kModoptSubBegin,
                                          scheme.num_buckets() * subrounds + 1);
  {
    // Class lists live in the workspace so their capacities survive
    // across sweeps, levels and detect() calls (the per-call
    // construction they replace was a measured hot-loop allocator).
    auto& classes = ws.class_lists();
    if (classes.size() < subrounds) classes.resize(subrounds);
    for (std::size_t b = 0; b < scheme.num_buckets(); ++b) {
      auto bucket = binned.bucket(b);
      for (unsigned s = 0; s < subrounds; ++s) classes[s].clear();
      for (VertexId v : bucket) classes[class_of(v)].push_back(v);
      std::size_t at = binned.begin[b];
      for (unsigned s = 0; s < subrounds; ++s) {
        sub_begin[b * subrounds + s] = at;
        for (VertexId v : classes[s]) order[at++] = v;
      }
    }
    sub_begin.back() = num_active;
  }
  if (rec) rec->end_span(order_span);

  const auto eval_q = [&] {
    return device_modularity_impl(
        device, rows, state.community, state.tot,
        ws.buffer<Weight>(Workspace::Slot::kModoptInPartial, device.workers()),
        ws.buffer<Weight>(Workspace::Slot::kModoptTotPartial,
                          device.workers()));
  };
  double current_q = 0;
  if (config.eval_phase_modularity) {
    obs::Span span(rec, "modopt/modularity");
    current_q = eval_q();
  }
  // True while current_q is the exact modularity of the live partition
  // (no commit moved a vertex since it was evaluated); lets the final
  // report reuse the last in-loop evaluation instead of paying one
  // more O(|E|) pass.
  bool q_fresh = config.eval_phase_modularity;

  while (result.sweeps < config.max_sweeps_per_level) {
    ++result.sweeps;
    util::Timer sweep_timer;
    obs::Span sweep_span(rec, "modopt/sweep");
    double sweep_gain = 0;
    std::size_t sweep_moved = 0;

    for (std::size_t b = 0; b < scheme.num_buckets(); ++b) {
      const unsigned lanes = scheme.lanes[b];
      // The per-vertex argmax array is sized for <= 128 lanes (one
      // block); a wider scheme would scribble past it.
      check::contract(lanes <= 128, "modopt: lane group wider than a block");
      const bool use_global = b >= scheme.global_from;
      // Heaviest bucket: one task per dispatch so the desc-by-degree
      // order load-balances (paper: interleaved assignment to blocks).
      const std::size_t grain = use_global ? 1 : 0;

      for (unsigned s = 0; s < subrounds; ++s) {
        const std::size_t lo = sub_begin[b * subrounds + s];
        const std::size_t hi = (b * subrounds + s + 1 < sub_begin.size() - 1)
                                   ? sub_begin[b * subrounds + s + 1]
                                   : sub_begin.back();
        if (lo >= hi) continue;
        std::span<const VertexId> group_vertices(order.data() + lo, hi - lo);

        {
          obs::Span kernel_span(
              rec, rec ? std::string_view(bucket_names[b]) : std::string_view());
          check::KernelScope kernel_scope("modopt/bucket", b);
          device.launch(group_vertices.size(), grain, [&](simt::TaskContext& ctx) {
            const VertexId v = group_vertices[ctx.task()];
            const std::uint32_t deg = rows.degree(v);
            // Binning contract: a vertex above its bucket's bound would
            // get a lane group and table partition sized for the wrong
            // degree class.
            if (b < scheme.bounds.size()) {
              check::contract(deg <= scheme.bounds[b],
                              "modopt: vertex degree exceeds its bucket bound");
            }
            if (deg == 0) {
              check::note_plain_write(&state.new_comm[v]);
              state.new_comm[v] = state.community[v];
              check::note_plain_write(&state.move_gain[v]);
              state.move_gain[v] = 0;
              return;
            }
            if (deg == 1) {
              compute_move_deg1(rows, ctx.worker(), state, m2, v);
              return;
            }
            const util::HashTableParams params =
                util::hash_params_for_degree(deg);
            const std::size_t cap = params.capacity;
            auto keys = use_global ? ctx.shared().alloc_global<Community>(cap)
                                   : ctx.shared().alloc<Community>(cap);
            auto weights = use_global ? ctx.shared().alloc_global<Weight>(cap)
                                      : ctx.shared().alloc<Weight>(cap);
            auto touched = use_global
                               ? ctx.shared().alloc_global<std::uint32_t>(cap)
                               : ctx.shared().alloc<std::uint32_t>(cap);
            // The standard widths get compile-time lane counts (constant
            // strided loops and reduction trees); anything else falls
            // back to the runtime group. Same arithmetic either way.
            // On the vector backend the same widths dispatch to
            // VectorLaneGroup, whose collectives lower to AVX2 gathers
            // and masked scans; non-standard ablation widths stay on
            // the scalar substrate.
            const auto run_table = [&](auto& table) {
              table.clear();
              if (vector_backend) {
                simt::VecLaneStats* st = &vstats[ctx.worker()];
                switch (lanes) {
                  case 4:
                    compute_move(rows, ctx.worker(), state, m2, v,
                                 simt::VectorLaneGroup<4>{st}, table, touched);
                    return;
                  case 8:
                    compute_move(rows, ctx.worker(), state, m2, v,
                                 simt::VectorLaneGroup<8>{st}, table, touched);
                    return;
                  case 16:
                    compute_move(rows, ctx.worker(), state, m2, v,
                                 simt::VectorLaneGroup<16>{st}, table,
                                 touched);
                    return;
                  case 32:
                    compute_move(rows, ctx.worker(), state, m2, v,
                                 simt::VectorLaneGroup<32>{st}, table,
                                 touched);
                    return;
                  case 128:
                    compute_move(rows, ctx.worker(), state, m2, v,
                                 simt::VectorLaneGroup<128>{st}, table,
                                 touched);
                    return;
                  default:
                    break;  // ablation widths: scalar substrate below
                }
              }
              switch (lanes) {
                case 4:
                  compute_move(rows, ctx.worker(), state, m2, v,
                               simt::FixedLaneGroup<4>{}, table, touched);
                  break;
                case 8:
                  compute_move(rows, ctx.worker(), state, m2, v,
                               simt::FixedLaneGroup<8>{}, table, touched);
                  break;
                case 16:
                  compute_move(rows, ctx.worker(), state, m2, v,
                               simt::FixedLaneGroup<16>{}, table, touched);
                  break;
                case 32:
                  compute_move(rows, ctx.worker(), state, m2, v,
                               simt::FixedLaneGroup<32>{}, table, touched);
                  break;
                case 128:
                  compute_move(rows, ctx.worker(), state, m2, v,
                               simt::FixedLaneGroup<128>{}, table, touched);
                  break;
                default:
                  compute_move(rows, ctx.worker(), state, m2, v,
                               simt::LaneGroup(lanes), table, touched);
                  break;
              }
            };
            // Task-local tables either way: this lane group runs inside
            // one OS thread (see hash_map.hpp for why no host atomics
            // are needed). The occupancy layout stores emptiness in a
            // bit-packed side word (zg/occmap.hpp) but probes the same
            // slots in the same order, so the move decision is
            // bitwise-invariant under the layout switch.
            if (config.table_layout == TableLayout::kOccupancy) {
              const std::size_t words = zg::OccCommunityHashMap::occ_words(cap);
              auto occ = use_global
                             ? ctx.shared().alloc_global<std::uint32_t>(words)
                             : ctx.shared().alloc<std::uint32_t>(words);
              zg::OccCommunityHashMap table(keys, weights, occ, params);
              run_table(table);
            } else {
              LocalCommunityHashMap table(keys, weights, params);
              run_table(table);
            }
          });
        }

        if (config.update == UpdateStrategy::Bucketed) {
          obs::Span commit_span(rec, "modopt/commit");
          const CommitResult commit =
              commit_moves(device, state, group_vertices, ws);
          sweep_gain += commit.gain;
          sweep_moved += commit.moved;
        }
      }
    }

    if (config.update == UpdateStrategy::Relaxed) {
      obs::Span commit_span(rec, "modopt/commit");
      const CommitResult commit = commit_moves(
          device, state, std::span<const VertexId>(binned.order), ws);
      sweep_gain += commit.gain;
      sweep_moved += commit.moved;
    }

    if (sweep_moved > 0) q_fresh = false;
    if (result.sweeps == 1) result.first_sweep_seconds = sweep_timer.seconds();
    if (rec) {
      rec->count("modopt/moved_frac",
                 static_cast<double>(sweep_moved) /
                     static_cast<double>(num_active),
                 result.sweeps - 1);
    }

    // Algorithm 1 line 12: repeat until the accumulated modularity gain
    // of a sweep drops below the threshold. The cheap accumulated
    // predicted gain prunes first (it upper-bounds progress: every
    // committed move predicted a positive gain); only when it is still
    // above threshold is the exact modularity evaluated, which also
    // catches oscillation (real gain <= 0 while predictions stay
    // positive).
    if (sweep_gain < threshold) break;
    if (!config.eval_phase_modularity) continue;
    obs::Span q_span(rec, "modopt/modularity");
    const double new_q = eval_q();
    q_fresh = true;
    if (new_q - current_q < threshold) {
      current_q = new_q;
      break;
    }
    current_q = new_q;
  }

  if (rec) rec->count("modopt/sweeps", result.sweeps);
  if (rec && vector_backend) {
    std::uint64_t lanes_active = 0;
    std::uint64_t lanes_issued = 0;
    for (unsigned w = 0; w < device.workers(); ++w) {
      lanes_active += vstats[w].active;
      lanes_issued += vstats[w].slots;
    }
    if (lanes_issued > 0) {
      rec->count("modopt/vector_lane_occupancy",
                 static_cast<double>(lanes_active) /
                     static_cast<double>(lanes_issued));
    }
  }
  if (q_fresh || !config.eval_phase_modularity) {
    result.modularity = current_q;
  } else {
    obs::Span final_q_span(rec, "modopt/modularity");
    result.modularity = eval_q();
  }
  ws.emit(rec, "modopt", ws_since);
  return result;
}

}  // namespace

PhaseResult optimize_phase(simt::Device& device, const Csr& graph,
                           const Config& config, PhaseState& state,
                           double threshold, obs::Recorder* rec) {
  Workspace ws;
  return optimize_phase(device, graph, config, state,
                        std::span<const VertexId>{}, threshold, ws, rec);
}

PhaseResult optimize_phase(simt::Device& device, const Csr& graph,
                           const Config& config, PhaseState& state,
                           std::span<const VertexId> active,
                           double threshold, obs::Recorder* rec) {
  Workspace ws;
  return optimize_phase(device, graph, config, state, active, threshold, ws,
                        rec);
}

PhaseResult optimize_phase(simt::Device& device, const Csr& graph,
                           const Config& config, PhaseState& state,
                           std::span<const VertexId> active,
                           double threshold, Workspace& ws,
                           obs::Recorder* rec) {
  PlainRows rows(graph);
  return optimize_phase_impl(device, rows, config, state, active, threshold,
                             ws, rec);
}

PhaseResult optimize_phase(simt::Device& device, ZRows& rows,
                           const Config& config, PhaseState& state,
                           std::span<const VertexId> active,
                           double threshold, Workspace& ws,
                           obs::Recorder* rec) {
  return optimize_phase_impl(device, rows, config, state, active, threshold,
                             ws, rec);
}

}  // namespace glouvain::core
