// Public entry point of the library: the GPU-style Louvain method of
// Naim, Manne, Halappanavar & Tumeo (IPDPS 2017) on the software SIMT
// device. Usage:
//
//   glouvain::core::Louvain runner;                 // default config
//   auto result = runner.run(graph);
//   // result.community[v], result.modularity, result.levels, ...
//
// A Louvain instance owns its device (thread pool + shared-memory
// arenas) and can be reused across runs. For one-off calls the free
// function louvain() constructs a temporary instance.
#pragma once

#include <memory>

#include "core/aggregate.hpp"
#include "core/config.hpp"
#include "core/modopt.hpp"
#include "graph/csr.hpp"

namespace glouvain::core {

/// Extra diagnostics beyond the common LouvainResult.
struct DeviceStats {
  std::uint64_t shared_spills = 0;  ///< hash tables that overflowed the
                                    ///< shared arena into heap storage
  unsigned workers = 0;             ///< device worker threads used
};

struct Result : LouvainResult {
  DeviceStats device;
};

class Louvain {
 public:
  explicit Louvain(const Config& config = {});
  ~Louvain();

  Louvain(const Louvain&) = delete;
  Louvain& operator=(const Louvain&) = delete;

  /// Run the full multi-level pipeline on `graph`.
  Result run(const graph::Csr& graph);

  /// Run a single modularity-optimization phase starting from the
  /// all-singletons partition (exposed for tests and benches).
  PhaseResult run_phase(const graph::Csr& graph,
                        std::vector<graph::Community>& community,
                        double threshold);

  const Config& config() const noexcept { return config_; }
  simt::Device& device() noexcept { return *device_; }

 private:
  Config config_;
  std::unique_ptr<simt::Device> device_;
};

/// One-shot convenience wrapper.
Result louvain(const graph::Csr& graph, const Config& config = {});

}  // namespace glouvain::core
