// Public entry point of the library: the GPU-style Louvain method of
// Naim, Manne, Halappanavar & Tumeo (IPDPS 2017) on the software SIMT
// device. Usage:
//
//   glouvain::core::Louvain runner;                 // default config
//   auto result = runner.run(graph);
//   // result.community[v], result.modularity, result.levels, ...
//
// A Louvain instance owns its device (thread pool + shared-memory
// arenas) and can be reused across runs. For one-off calls the free
// function louvain() constructs a temporary instance. Pass an
// obs::Recorder to run() for the per-level phase/kernel span tree.
#pragma once

#include <memory>
#include <span>

#include "core/aggregate.hpp"
#include "core/config.hpp"
#include "core/modopt.hpp"
#include "core/workspace.hpp"
#include "detect/result.hpp"
#include "graph/csr.hpp"

namespace glouvain::obs {
class Recorder;
}

namespace glouvain::core {

/// The uniform result currency lives in detect/result.hpp; these
/// aliases keep every pre-existing core::Result call site (tests,
/// benches, the svc result cache) source-compatible.
using DeviceStats = detect::DeviceStats;
using Result = detect::Result;

class Louvain {
 public:
  explicit Louvain(const Config& config = {});
  ~Louvain();

  Louvain(const Louvain&) = delete;
  Louvain& operator=(const Louvain&) = delete;

  /// Run the full multi-level pipeline on `graph`. `recorder` (optional)
  /// receives per-level modopt/aggregate span trees and counters.
  Result run(const graph::Csr& graph, obs::Recorder* recorder = nullptr);

  /// Compressed-storage run: level 0 decodes neighbour rows from the
  /// varint-compressed `z` instead of reading a plain Csr; the much
  /// smaller contracted levels run uncompressed as usual. Partitions
  /// are bitwise-identical to run() on the graph `z` encodes. Throws
  /// std::invalid_argument when config.use_coloring is set (the
  /// coloring pass walks the raw Csr).
  Result run_z(const zg::ZCsr& z, obs::Recorder* recorder = nullptr);

  /// Warm-start run (the dynamic-graph path): level 0 starts from
  /// `seed` (one label < num_vertices per vertex) and re-optimizes only
  /// `frontier` (empty = every vertex); subsequent levels run the
  /// normal contraction hierarchy. The returned modularity is exact
  /// for the final partition, directly comparable to run()'s.
  Result run_warm(const graph::Csr& graph,
                  std::span<const graph::Community> seed,
                  std::span<const graph::VertexId> frontier,
                  obs::Recorder* recorder = nullptr);

  /// Run a single modularity-optimization phase starting from the
  /// all-singletons partition (exposed for tests and benches).
  PhaseResult run_phase(const graph::Csr& graph,
                        std::vector<graph::Community>& community,
                        double threshold);

  /// Replace the algorithm configuration, keeping the device (thread
  /// pool + arenas) warm. The new config's device section is ignored —
  /// construct a fresh Louvain to change device shape.
  void set_config(const Config& config);

  const Config& config() const noexcept { return config_; }
  simt::Device& device() noexcept { return *device_; }

  /// The instance's workspace arena (slot buffers, prim scratch,
  /// recycled vectors). Warm across levels, sweeps and run() calls —
  /// the cudaMalloc-once discipline of the paper's device buffers.
  Workspace& workspace() noexcept { return ws_; }

 private:
  /// Exactly one of `graph` / `z0` is non-null: z0 selects the
  /// compressed level-0 path, after which the loop continues on the
  /// contracted plain Csr either way.
  Result run_impl(const graph::Csr* graph, const zg::ZCsr* z0,
                  std::span<const graph::Community> seed,
                  std::span<const graph::VertexId> frontier, bool warm,
                  obs::Recorder* recorder);

  Config config_;
  std::unique_ptr<simt::Device> device_;
  /// Persistent per-run state: the device arrays grow to the level-0
  /// graph once and are reused by every later level and every later
  /// run on this instance.
  Workspace ws_;
  PhaseState state_;
};

/// One-shot convenience wrapper.
Result louvain(const graph::Csr& graph, const Config& config = {},
               obs::Recorder* recorder = nullptr);

/// One-shot convenience wrapper over Louvain::run_z.
Result louvain_z(const zg::ZCsr& z, const Config& config = {},
                 obs::Recorder* recorder = nullptr);

}  // namespace glouvain::core
